//! # corescope-bench
//!
//! Criterion benches (one group per artifact family) and the `repro`
//! binary that regenerates every table and figure of the paper. See
//! `benches/` and `src/bin/repro.rs`.
//!
//! Also home to [`validate_chrome_trace`], a serde-free sanity check for
//! the Chrome-trace JSON that `repro --trace` emits — CI runs it on the
//! smoke-test output so a malformed exporter fails the build rather than
//! failing silently in `chrome://tracing`.

pub use corescope_harness::{Artifact, Fidelity};

use corescope_harness::Table;
use std::path::{Path, PathBuf};

/// Writes one CSV file per table under `dir` and returns the written
/// paths.
///
/// A single table lands in `<id>.csv`; a multi-table artifact lands in
/// `<id>_0.csv`, `<id>_1.csv`, … — the naming used by `repro --csv` and
/// `corescope-serve --csv` alike, so downstream diffing scripts see one
/// layout.
///
/// # Errors
///
/// Returns a one-line description naming the path that failed.
pub fn write_tables_csv(dir: &Path, id: &str, tables: &[Table]) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = Vec::with_capacity(tables.len());
    for (i, table) in tables.iter().enumerate() {
        let name = if tables.len() > 1 { format!("{id}_{i}.csv") } else { format!("{id}.csv") };
        let path = dir.join(name);
        std::fs::write(&path, table.to_csv())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// Structural sanity check for an exported Chrome trace, without a JSON
/// dependency.
///
/// Verifies that the document is a single object with balanced braces and
/// brackets (tracked outside string literals, honouring escapes), that no
/// text trails the final brace, and that the Chrome-trace essentials —
/// a `"traceEvents"` array and `"ph"` / `"ts"` / `"pid"` event fields —
/// are present.
///
/// # Errors
///
/// Returns a one-line description of the first structural problem found.
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let trimmed = json.trim();
    if !trimmed.starts_with('{') {
        return Err("trace must be a JSON object (expected leading '{')".to_string());
    }
    let mut depth_braces: i64 = 0;
    let mut depth_brackets: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut closed_at = None;
    for (i, c) in trimmed.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else if c.is_control() {
                return Err(format!("unescaped control character {c:?} inside a string"));
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_braces += 1,
            '}' => {
                depth_braces -= 1;
                if depth_braces < 0 {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
                if depth_braces == 0 && closed_at.is_none() {
                    closed_at = Some(i);
                }
            }
            '[' => depth_brackets += 1,
            ']' => {
                depth_brackets -= 1;
                if depth_brackets < 0 {
                    return Err(format!("unbalanced ']' at byte {i}"));
                }
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string literal".to_string());
    }
    if depth_braces != 0 || depth_brackets != 0 {
        return Err(format!(
            "unbalanced document: {depth_braces} braces, {depth_brackets} brackets left open"
        ));
    }
    match closed_at {
        Some(i) if i + 1 < trimmed.len() => {
            return Err("text after the closing brace of the root object".to_string())
        }
        None => return Err("root object never closes".to_string()),
        _ => {}
    }
    for required in ["\"traceEvents\"", "\"ph\"", "\"ts\"", "\"pid\""] {
        if !trimmed.contains(required) {
            return Err(format!("missing required Chrome-trace field {required}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_harness::{chrome_trace_json, representative_trace};

    #[test]
    fn accepts_a_minimal_trace() {
        let json = r#"{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0,"name":"a","dur":1}]}"#;
        assert_eq!(validate_chrome_trace(json), Ok(()));
    }

    #[test]
    fn accepts_a_real_exported_trace() {
        let bundle = representative_trace(Artifact::F14, Fidelity::Quick).unwrap().unwrap();
        let json = chrome_trace_json(&bundle.label, &bundle.trace);
        validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn rejects_structural_damage() {
        assert!(validate_chrome_trace("[]").is_err(), "must be an object");
        assert!(validate_chrome_trace(r#"{"traceEvents":["#).is_err(), "unbalanced");
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"X","ts":0,"pid":0}]}}"#).is_err(),
            "extra brace"
        );
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"X","ts":0,"pid":0}]} x"#).is_err(),
            "trailing text"
        );
        assert!(
            validate_chrome_trace(r#"{"events":[{"ph":"X","ts":0,"pid":0}]}"#).is_err(),
            "missing traceEvents"
        );
        assert!(validate_chrome_trace(r#"{"traceEvents":"oops"#).is_err(), "open string");
    }

    #[test]
    fn csv_helper_names_single_and_multi_table_artifacts() {
        let dir = std::env::temp_dir().join("corescope-csv-helper-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = corescope_harness::Table::with_columns("t", &["r", "a"]);
        t.push_row("x", vec![corescope_harness::Cell::num(1.0)]);

        let single = write_tables_csv(&dir, "t9", std::slice::from_ref(&t)).unwrap();
        assert_eq!(single, vec![dir.join("t9.csv")]);
        let multi = write_tables_csv(&dir, "x5", &[t.clone(), t.clone()]).unwrap();
        assert_eq!(multi, vec![dir.join("x5_0.csv"), dir.join("x5_1.csv")]);
        assert_eq!(std::fs::read_to_string(&single[0]).unwrap(), t.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn braces_inside_strings_do_not_count() {
        let json = r#"{"traceEvents":[{"ph":"i","ts":0,"pid":0,"name":"Kill { target: 3 }"}]}"#;
        assert_eq!(validate_chrome_trace(json), Ok(()));
        let esc = r#"{"traceEvents":[{"ph":"X","ts":0,"pid":0,"name":"q\"}{\""}]}"#;
        assert_eq!(validate_chrome_trace(esc), Ok(()));
    }
}
