//! `calib_bench` — runs the x7 calibration fit and emits
//! `BENCH_calib.json`.
//!
//! ```text
//! calib_bench                    # quick fit, budget 60 → BENCH_calib.json
//! calib_bench --budget 40        # the CI smoke budget
//! calib_bench --jobs 4           # fan candidate evaluations out
//! calib_bench --cache results/.cache  # persist engine results on disk
//! calib_bench --out bench/       # write the JSON elsewhere
//! ```
//!
//! The bench performs exactly the artifact's fit — perturbed start
//! (+25% DRAM latency, −25% HT bandwidth), stream + latency target
//! families, quick fidelity — and records what the report tables
//! deliberately leave out: the best-score trajectory, evaluation count,
//! and the scheduler's cache hit-rate. It exits non-zero when a
//! calibration invariant is violated (fit did not converge, or a fitted
//! parameter landed outside the recovery tolerance), so CI catches a
//! regressing optimizer the same way it catches a performance cliff.

use corescope_harness::artifacts::calibration;
use corescope_harness::Fidelity;
use corescope_machine::CalibParams;
use corescope_sched::{json, ResultCache, Scheduler};
use std::time::Instant;

struct Options {
    budget: usize,
    jobs: usize,
    cache_dir: Option<std::path::PathBuf>,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        budget: 60,
        jobs: 1,
        cache_dir: None,
        out: std::path::PathBuf::from("BENCH_calib.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" | "-b" => {
                options.budget = args
                    .next()
                    .ok_or("--budget needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--jobs" | "-j" => {
                options.jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--cache" => {
                options.cache_dir =
                    Some(std::path::PathBuf::from(args.next().ok_or("--cache needs a directory")?));
            }
            "--out" | "-o" => {
                options.out = std::path::PathBuf::from(args.next().ok_or("--out needs a path")?);
                if options.out.is_dir() {
                    options.out = options.out.join("BENCH_calib.json");
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: calib_bench [--budget <n>] [--jobs <n>] [--cache <dir>] [--out <path>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(options)
}

fn run() -> Result<(), String> {
    let options = parse_args()?;
    let sched = match &options.cache_dir {
        Some(dir) => Scheduler::with_cache(options.jobs, ResultCache::on_disk(dir)),
        None => Scheduler::new(options.jobs),
    };

    let eval = corescope_calib::Evaluator::with_families(
        &sched,
        Fidelity::Quick,
        &[corescope_calib::Family::Stream, corescope_calib::Family::Latency],
    );
    let start = calibration::perturbed_start();
    let config = calibration::fit_config(Fidelity::Quick).with_budget(options.budget);

    let started = Instant::now();
    let outcome = corescope_calib::fit(&eval, start, &config).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed().as_secs_f64();

    if !outcome.converged {
        return Err(format!(
            "fit did not converge: best score {} after {} evaluations",
            outcome.best_score, outcome.evaluations
        ));
    }
    let shipped = CalibParams::paper_2006();
    for field in &CalibParams::FIELDS {
        let fitted = field.read(&outcome.fitted);
        let reference = field.read(&shipped);
        let rel = ((fitted - reference) / reference).abs();
        if rel > calibration::RECOVERY_TOLERANCE {
            return Err(format!(
                "parameter '{}' fitted {:.1}% away from shipped",
                field.name,
                rel * 100.0
            ));
        }
    }

    let stats = sched.stats();
    let hits = stats.hits_memory + stats.hits_disk;
    let hit_rate = if stats.scenarios > 0 { hits as f64 / stats.scenarios as f64 } else { 0.0 };
    let trajectory: Vec<String> =
        outcome.trajectory.iter().map(|p| json::num(p.best_score)).collect();
    let fitted: Vec<String> = calibration::FITTED_AXES
        .iter()
        .map(|name| {
            let f = CalibParams::field(name).expect("fitted axes are registry fields");
            format!("\"{name}\":{}", json::num(f.read(&outcome.fitted)))
        })
        .collect();

    let body = format!(
        "{{\"bench\":\"calib\",\"fidelity\":\"quick\",\"budget\":{},\
         \"evaluations\":{},\"start_score\":{},\"best_score\":{},\
         \"converged\":true,\"elapsed_s\":{},\
         \"fitted\":{{{}}},\
         \"scenarios\":{},\"engine_runs\":{},\"cache_hits\":{hits},\
         \"cache_hit_rate\":{},\
         \"trajectory\":[{}]}}\n",
        options.budget,
        outcome.evaluations,
        json::num(outcome.start_score),
        json::num(outcome.best_score),
        json::num(elapsed),
        fitted.join(","),
        stats.scenarios,
        stats.engine_runs,
        json::num(hit_rate),
        trajectory.join(","),
    );
    std::fs::write(&options.out, &body)
        .map_err(|e| format!("writing {}: {e}", options.out.display()))?;
    print!("{body}");
    eprintln!("{}", sched.summary());
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("calib_bench: {e}");
        std::process::exit(1);
    }
}
