//! `store_fsck` — verify, repair, compact, and benchmark the crash-safe
//! campaign store (`corescope-store`).
//!
//! ```text
//! store_fsck <dir>            # read-only verify; exit 0 clean, 1 damaged
//! store_fsck <dir> --repair   # make it clean; exit 1 if unrepairable
//! store_fsck <dir> --compact  # fold duplicates, merge segments
//! store_fsck <dir> --dump     # canonical CSV of all rows (CI byte-diffs this)
//! store_fsck --bench [--out <path>]   # write/scan throughput → BENCH_store.json
//! ```
//!
//! Verify prints the typed report lines ([`fsck::FsckReport::lines`]):
//! one `kind key=value…` line per finding plus a final `summary …
//! clean=<bool>` line, so CI can grep for a specific damage class.
//! Repair prints the same report *after* repairing (with `repaired …`
//! action lines) and exits non-zero only when the store still is not
//! clean — unrepairable damage, reported as a typed error.
//!
//! `--dump` emits every committed row (deduplicated, digest-sorted) as
//! CSV. The output is a pure function of the committed row *set*, so a
//! killed-and-resumed campaign's dump must byte-match an uninterrupted
//! one — the CI kill-resume smoke job relies on exactly that.

use corescope_store::{fsck, Options, Row, Store};
use std::path::{Path, PathBuf};
use std::time::Instant;

enum Mode {
    Verify,
    Repair,
    Compact,
    Dump,
    Bench { out: PathBuf },
}

fn parse_args() -> Result<(Option<PathBuf>, Mode), String> {
    let mut dir: Option<PathBuf> = None;
    let mut mode = None;
    let mut out = PathBuf::from("BENCH_store.json");
    let mut bench = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repair" => mode = Some(Mode::Repair),
            "--compact" => mode = Some(Mode::Compact),
            "--dump" => mode = Some(Mode::Dump),
            "--bench" => bench = true,
            "--out" | "-o" => {
                out = PathBuf::from(args.next().ok_or("--out needs a path")?);
                if out.is_dir() {
                    out = out.join("BENCH_store.json");
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: store_fsck <dir> [--repair | --compact | --dump]\n\
                     \x20      store_fsck --bench [--out <path>]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => dir = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if bench {
        return Ok((dir, Mode::Bench { out }));
    }
    if dir.is_none() {
        return Err("store directory required (try --help)".to_string());
    }
    Ok((dir, mode.unwrap_or(Mode::Verify)))
}

/// Canonical CSV of the committed rows: deduplicated (last wins, the
/// store's scan semantics), sorted by digest, floats in Rust's
/// shortest-roundtrip form — a pure function of the row set.
fn dump(dir: &Path) -> Result<String, String> {
    let store = Store::open_reader(dir).map_err(|e| e.to_string())?;
    let mut rows = store.rows().map_err(|e| e.to_string())?;
    rows.sort_by_key(|r| r.digest);
    let mut out = String::from(
        "digest,system,fidelity,placement,mpi,lock,workload,nranks,\
         makespan,events,faults_applied,checkpoints_taken,recoveries,retries\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:032x},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.digest,
            r.system,
            r.fidelity,
            r.placement,
            r.mpi,
            r.lock,
            r.workload,
            r.nranks,
            r.makespan,
            r.events,
            r.faults_applied,
            r.checkpoints_taken,
            r.recoveries,
            r.retries,
        ));
    }
    Ok(out)
}

fn synthetic_row(i: u64) -> Row {
    Row {
        digest: u128::from(i) * 0x9e37_79b9_7f4a_7c15 + 1,
        system: "dmz".to_string(),
        fidelity: "quick".to_string(),
        placement: "localalloc".to_string(),
        mpi: "mpich2".to_string(),
        lock: "usysv".to_string(),
        workload: "bsp".to_string(),
        nranks: (i % 8 + 1) as u32,
        makespan: (i as f64).mul_add(1.0e-6, 0.5),
        events: i * 37,
        faults_applied: 0,
        checkpoints_taken: 0,
        recoveries: 0,
        retries: i % 3,
    }
}

/// Write/scan throughput over a synthetic campaign, with the integrity
/// gates that make the numbers trustworthy: the store must verify clean
/// afterwards, a reopen must dedup every digest, and the scan must see
/// every row back.
fn bench(out: &Path) -> Result<(), String> {
    const ROWS: u64 = 50_000;
    let dir = std::env::temp_dir().join(format!("corescope-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let tag = "store-bench";
    // Modest roll threshold so the bench exercises segment rolling too.
    let options = Options { roll_bytes: 1 << 20, ..Options::default() };

    let started = Instant::now();
    {
        let mut store = Store::open_with(&dir, tag, options.clone()).map_err(|e| e.to_string())?;
        for i in 0..ROWS {
            store.append(synthetic_row(i)).map_err(|e| e.to_string())?;
        }
        store.flush().map_err(|e| e.to_string())?;
    }
    let write_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let scanned = {
        let store = Store::open_reader(&dir).map_err(|e| e.to_string())?;
        store.rows().map_err(|e| e.to_string())?.len() as u64
    };
    let scan_s = started.elapsed().as_secs_f64();

    // Gate 1: every row must come back.
    if scanned != ROWS {
        return Err(format!("scan returned {scanned} of {ROWS} rows"));
    }
    // Gate 2: a reopened writer must already contain every digest.
    {
        let store = Store::open_with(&dir, tag, options).map_err(|e| e.to_string())?;
        if store.rows_committed() != ROWS || !store.contains(synthetic_row(ROWS - 1).digest) {
            return Err("reopen lost committed rows".to_string());
        }
    }
    // Gate 3: the store must verify clean.
    let report = fsck::verify(&dir).map_err(|e| e.to_string())?;
    let verify_ok = report.is_clean();
    let segments = report.segments;
    let _ = std::fs::remove_dir_all(&dir);
    if !verify_ok {
        return Err(format!("bench store failed verify: {:?}", report.lines()));
    }

    let num = |v: f64| {
        // Plain decimal, enough digits to compare runs.
        format!("{v:.6}")
    };
    let body = format!(
        "{{\"bench\":\"store\",\"rows\":{ROWS},\"segments\":{segments},\
         \"write_s\":{},\"write_rows_per_s\":{},\
         \"scan_s\":{},\"scan_rows_per_s\":{},\"verify_ok\":{verify_ok}}}\n",
        num(write_s),
        num(ROWS as f64 / write_s.max(1e-9)),
        num(scan_s),
        num(ROWS as f64 / scan_s.max(1e-9)),
    );
    std::fs::write(out, &body).map_err(|e| format!("writing {}: {e}", out.display()))?;
    print!("{body}");
    Ok(())
}

fn run(dir: Option<PathBuf>, mode: Mode) -> Result<i32, String> {
    match mode {
        Mode::Bench { out } => {
            bench(&out)?;
            Ok(0)
        }
        Mode::Verify => {
            let dir = dir.expect("checked in parse_args");
            let report = fsck::verify(&dir).map_err(|e| e.to_string())?;
            for line in report.lines() {
                println!("{line}");
            }
            Ok(i32::from(!report.is_clean()))
        }
        Mode::Repair => {
            let dir = dir.expect("checked in parse_args");
            let report = fsck::repair(&dir).map_err(|e| format!("unrepairable: {e}"))?;
            for line in report.lines() {
                println!("{line}");
            }
            Ok(i32::from(!report.is_clean()))
        }
        Mode::Compact => {
            let dir = dir.expect("checked in parse_args");
            let report = fsck::compact(&dir).map_err(|e| e.to_string())?;
            println!(
                "compacted segments {} -> {}, rows {} -> {}, bytes {} -> {}",
                report.segments_before,
                report.segments_after,
                report.rows_before,
                report.rows_after,
                report.bytes_before,
                report.bytes_after,
            );
            Ok(0)
        }
        Mode::Dump => {
            let dir = dir.expect("checked in parse_args");
            print!("{}", dump(&dir)?);
            Ok(0)
        }
    }
}

fn main() {
    // Exit codes: 0 clean/repaired, 1 damage or an unrepairable/failed
    // operation, 2 usage errors.
    let (dir, mode) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("store_fsck: {e}");
            std::process::exit(2);
        }
    };
    match run(dir, mode) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("store_fsck: {e}");
            std::process::exit(1);
        }
    }
}
