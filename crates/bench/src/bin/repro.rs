//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                      # every artifact, full fidelity
//! repro --artifact t2        # just Table 2
//! repro --quick              # reduced step counts (fast sanity sweep)
//! repro --jobs 8             # regenerate artifacts in parallel
//! repro --csv out/           # also write one CSV per table
//! repro --trace traces/      # also export engine traces + utilization
//! repro --list               # list artifact ids
//! ```
//!
//! `--trace <dir>` re-runs a representative configuration of each
//! requested artifact with engine tracing on and writes
//! `<id>.trace.json` (Chrome trace format — load in `chrome://tracing`
//! or Perfetto) and `<id>.util.csv` (per-resource utilization timeline).
//! Artifacts without a traced representative are skipped with a note.

use corescope_bench::validate_chrome_trace;
use corescope_harness::{chrome_trace_json, representative_trace, utilization_csv};
use corescope_harness::{Artifact, Fidelity};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    artifacts: Vec<Artifact>,
    fidelity: Fidelity,
    csv_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    jobs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut artifacts = Vec::new();
    let mut fidelity = Fidelity::Full;
    let mut csv_dir = None;
    let mut trace_dir = None;
    let mut jobs = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--artifact" | "-a" => {
                let id = args.next().ok_or("--artifact needs an id (e.g. t2, f10)")?;
                let artifact =
                    Artifact::parse(&id).ok_or_else(|| format!("unknown artifact '{id}'"))?;
                artifacts.push(artifact);
            }
            "--quick" | "-q" => fidelity = Fidelity::Quick,
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let dir = args.next().ok_or("--trace needs a directory")?;
                trace_dir = Some(PathBuf::from(dir));
            }
            "--list" | "-l" => {
                // Ignore EPIPE so `repro --list | head` exits quietly.
                let mut out = std::io::stdout().lock();
                for a in Artifact::all() {
                    if writeln!(out, "{:>4}  {}", a.id(), a.title()).is_err() {
                        break;
                    }
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--artifact <id>]... [--quick] [--csv <dir>] \
                     [--trace <dir>] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if artifacts.is_empty() {
        artifacts = Artifact::all();
    }
    Ok(Options { artifacts, fidelity, csv_dir, trace_dir, jobs })
}

type RunOutcome = Result<Vec<corescope_harness::Table>, corescope_machine::Error>;

/// Runs every artifact, up to `jobs` at a time, preserving input order in
/// the result vector.
fn run_all(
    artifacts: &[Artifact],
    fidelity: Fidelity,
    jobs: usize,
) -> Vec<(Artifact, RunOutcome, f64)> {
    let results = std::sync::Mutex::new(vec![None; artifacts.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(artifacts.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&artifact) = artifacts.get(i) else { break };
                let started = Instant::now();
                let outcome = artifact.run(fidelity);
                let elapsed = started.elapsed().as_secs_f64();
                results.lock().expect("no panics while holding the results lock")[i] =
                    Some((artifact, outcome, elapsed));
            });
        }
    });
    results
        .into_inner()
        .expect("no panics while holding the results lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    for dir in [&options.csv_dir, &options.trace_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failures = 0;
    for (artifact, outcome, elapsed) in run_all(&options.artifacts, options.fidelity, options.jobs)
    {
        match outcome {
            Ok(tables) => {
                for (i, table) in tables.iter().enumerate() {
                    println!("{table}");
                    if let Some(dir) = &options.csv_dir {
                        let name = if tables.len() > 1 {
                            format!("{}_{}.csv", artifact.id(), i)
                        } else {
                            format!("{}.csv", artifact.id())
                        };
                        let path = dir.join(name);
                        if let Err(e) = std::fs::File::create(&path)
                            .and_then(|mut f| f.write_all(table.to_csv().as_bytes()))
                        {
                            eprintln!("repro: writing {}: {e}", path.display());
                            failures += 1;
                        }
                    }
                }
                if let Some(dir) = &options.trace_dir {
                    if let Err(e) = export_trace(artifact, options.fidelity, dir) {
                        eprintln!("repro: tracing {}: {e}", artifact.id());
                        failures += 1;
                    }
                }
                eprintln!("[{}] done in {elapsed:.1}s", artifact.id());
            }
            Err(e) => {
                eprintln!("repro: {} failed: {e}", artifact.id());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Re-runs `artifact`'s representative configuration traced and writes
/// `<id>.trace.json` + `<id>.util.csv` into `dir`. The exported JSON is
/// validated before it is written, so a broken exporter fails loudly.
fn export_trace(
    artifact: Artifact,
    fidelity: Fidelity,
    dir: &std::path::Path,
) -> Result<(), String> {
    let bundle = match representative_trace(artifact, fidelity) {
        Ok(Some(bundle)) => bundle,
        Ok(None) => {
            eprintln!("[{}] no traced representative; skipping trace export", artifact.id());
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    let json = chrome_trace_json(&bundle.label, &bundle.trace);
    validate_chrome_trace(&json).map_err(|e| format!("exported trace is malformed: {e}"))?;
    let json_path = dir.join(format!("{}.trace.json", artifact.id()));
    std::fs::write(&json_path, &json)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    let csv_path = dir.join(format!("{}.util.csv", artifact.id()));
    std::fs::write(&csv_path, utilization_csv(&bundle.trace))
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    eprintln!(
        "[{}] traced '{}': {} + {}",
        artifact.id(),
        bundle.label,
        json_path.display(),
        csv_path.display()
    );
    Ok(())
}
