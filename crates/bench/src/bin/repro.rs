//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                      # every artifact, full fidelity
//! repro --artifact t2        # just Table 2
//! repro --quick              # reduced step counts (fast sanity sweep)
//! repro --jobs 8             # regenerate artifacts in parallel
//! repro --csv out/           # also write one CSV per table
//! repro --list               # list artifact ids
//! ```

use corescope_harness::{Artifact, Fidelity};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    artifacts: Vec<Artifact>,
    fidelity: Fidelity,
    csv_dir: Option<PathBuf>,
    jobs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut artifacts = Vec::new();
    let mut fidelity = Fidelity::Full;
    let mut csv_dir = None;
    let mut jobs = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--artifact" | "-a" => {
                let id = args.next().ok_or("--artifact needs an id (e.g. t2, f10)")?;
                let artifact =
                    Artifact::parse(&id).ok_or_else(|| format!("unknown artifact '{id}'"))?;
                artifacts.push(artifact);
            }
            "--quick" | "-q" => fidelity = Fidelity::Quick,
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--list" | "-l" => {
                // Ignore EPIPE so `repro --list | head` exits quietly.
                let mut out = std::io::stdout().lock();
                for a in Artifact::all() {
                    if writeln!(out, "{:>4}  {}", a.id(), a.title()).is_err() {
                        break;
                    }
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("usage: repro [--artifact <id>]... [--quick] [--csv <dir>] [--list]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if artifacts.is_empty() {
        artifacts = Artifact::all();
    }
    Ok(Options { artifacts, fidelity, csv_dir, jobs })
}

type RunOutcome = Result<Vec<corescope_harness::Table>, corescope_machine::Error>;

/// Runs every artifact, up to `jobs` at a time, preserving input order in
/// the result vector.
fn run_all(
    artifacts: &[Artifact],
    fidelity: Fidelity,
    jobs: usize,
) -> Vec<(Artifact, RunOutcome, f64)> {
    let results = std::sync::Mutex::new(vec![None; artifacts.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(artifacts.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&artifact) = artifacts.get(i) else { break };
                let started = Instant::now();
                let outcome = artifact.run(fidelity);
                let elapsed = started.elapsed().as_secs_f64();
                results.lock().expect("no panics while holding the results lock")[i] =
                    Some((artifact, outcome, elapsed));
            });
        }
    });
    results
        .into_inner()
        .expect("no panics while holding the results lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &options.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failures = 0;
    for (artifact, outcome, elapsed) in run_all(&options.artifacts, options.fidelity, options.jobs)
    {
        match outcome {
            Ok(tables) => {
                for (i, table) in tables.iter().enumerate() {
                    println!("{table}");
                    if let Some(dir) = &options.csv_dir {
                        let name = if tables.len() > 1 {
                            format!("{}_{}.csv", artifact.id(), i)
                        } else {
                            format!("{}.csv", artifact.id())
                        };
                        let path = dir.join(name);
                        if let Err(e) = std::fs::File::create(&path)
                            .and_then(|mut f| f.write_all(table.to_csv().as_bytes()))
                        {
                            eprintln!("repro: writing {}: {e}", path.display());
                            failures += 1;
                        }
                    }
                }
                eprintln!("[{}] done in {elapsed:.1}s", artifact.id());
            }
            Err(e) => {
                eprintln!("repro: {} failed: {e}", artifact.id());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
