//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                      # every artifact, full fidelity
//! repro --artifact t2        # just Table 2
//! repro --artifact x11 --machine dmz --machine epyc   # restrict the generation axis
//! repro --quick              # reduced step counts (fast sanity sweep)
//! repro --jobs 8             # fan out: sweep scenarios run in parallel
//! repro --cache results/.cache  # content-addressed result cache on disk
//! repro --store campaign/    # crash-safe campaign store (resume on reopen)
//! repro --csv out/           # also write one CSV per table
//! repro --trace traces/      # also export engine traces + utilization
//! repro --list               # list artifact ids
//! ```
//!
//! Artifacts *enumerate* [`corescope_sched::Scenario`]s and hand them to
//! a shared [`Scheduler`], which fans out over `--jobs` workers, dedups
//! identical scenarios in flight and consults the content-addressed
//! result cache. With `--cache <dir>` the cache persists across
//! invocations: a second run of the same artifacts replays cached engine
//! results and prints byte-identical tables. A summary line
//! (`sched: scenarios N, engine runs M, …`) lands on stderr at the end.
//!
//! `--trace <dir>` re-runs a representative configuration of each
//! requested artifact with engine tracing on and writes
//! `<id>.trace.json` (Chrome trace format — load in `chrome://tracing`
//! or Perfetto) and `<id>.util.csv` (per-resource utilization timeline).
//! Artifacts without a traced representative are skipped with a note.
//! Traced runs bypass the scheduler deliberately: traces are observation
//! artifacts, not cacheable results.
//!
//! `--store <dir>` attaches the crash-safe campaign store
//! (`corescope-store`): every finished scenario is journaled as a
//! columnar row, committed at batch boundaries. A rerun after a crash —
//! even `kill -9` mid-write — recovers the store and completes the
//! record: committed rows are preserved and duplicate appends fold
//! away, so the final row set is byte-identical to an uninterrupted
//! run's (pair with `--cache` to also skip the engine reruns). Inspect
//! or repair the directory with `store_fsck`.

use corescope_bench::write_tables_csv;
use corescope_harness::{chrome_trace_json, representative_trace, utilization_csv};
use corescope_harness::{Artifact, Fidelity};
use corescope_sched::{executor, ResultCache, Scheduler, StoreSink, System};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    artifacts: Vec<Artifact>,
    fidelity: Fidelity,
    csv_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    store_dir: Option<PathBuf>,
    machines: Vec<System>,
    jobs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut artifacts = Vec::new();
    let mut fidelity = Fidelity::Full;
    let mut csv_dir = None;
    let mut trace_dir = None;
    let mut cache_dir = None;
    let mut store_dir = None;
    let mut machines = Vec::new();
    let mut jobs = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--artifact" | "-a" => {
                let id = args.next().ok_or("--artifact needs an id (e.g. t2, f10)")?;
                artifacts.push(Artifact::from_id(&id).map_err(|e| e.to_string())?);
            }
            "--machine" | "-m" => {
                let key = args.next().ok_or("--machine needs a key (e.g. dmz, epyc)")?;
                machines.push(System::from_key(&key).map_err(|e| e.to_string())?);
            }
            "--quick" | "-q" => fidelity = Fidelity::Quick,
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let dir = args.next().ok_or("--trace needs a directory")?;
                trace_dir = Some(PathBuf::from(dir));
            }
            "--cache" => {
                let dir = args.next().ok_or("--cache needs a directory")?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--store" => {
                let dir = args.next().ok_or("--store needs a directory")?;
                store_dir = Some(PathBuf::from(dir));
            }
            "--list" | "-l" => {
                // Ignore EPIPE so `repro --list | head` exits quietly.
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                for a in Artifact::all() {
                    if writeln!(out, "{:>4}  {} — {}", a.id(), a.title(), a.describe()).is_err() {
                        break;
                    }
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--artifact <id>]... [--machine <key>]... [--quick] \
                     [--jobs <n>] [--cache <dir>] [--store <dir>] [--csv <dir>] \
                     [--trace <dir>] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if artifacts.is_empty() {
        artifacts = Artifact::all();
    }
    Ok(Options { artifacts, fidelity, csv_dir, trace_dir, cache_dir, store_dir, machines, jobs })
}

type RunOutcome = Result<Vec<corescope_harness::Table>, corescope_machine::Error>;

/// Runs every artifact through the shared scheduler, up to `jobs`
/// artifacts at a time, preserving input order in the result vector.
///
/// Parallelism applies at both levels: artifacts run concurrently here,
/// and each artifact's scenario sweep additionally fans out inside
/// `sched`. The in-flight dedup in the scheduler keeps concurrent
/// artifacts from repeating a shared scenario.
fn run_all(
    artifacts: Vec<Artifact>,
    fidelity: Fidelity,
    machines: &[System],
    sched: &Scheduler,
) -> Vec<(Artifact, RunOutcome, f64)> {
    let filter = if machines.is_empty() { None } else { Some(machines) };
    executor::run_ordered(sched.jobs(), artifacts, |&artifact| {
        let started = Instant::now();
        let outcome = artifact.run_on(fidelity, sched, filter);
        (artifact, outcome, started.elapsed().as_secs_f64())
    })
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &options.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    // Oversubscribing a small machine only adds context-switch overhead
    // to CPU-bound simulation, so cap the fan-out at the cores we have.
    let cores = std::thread::available_parallelism().map_or(options.jobs, |n| n.get());
    let jobs = options.jobs.min(cores.max(1));
    if jobs < options.jobs {
        eprintln!("repro: capping --jobs {} at {jobs} available core(s)", options.jobs);
    }
    let mut sched = match &options.cache_dir {
        Some(dir) => Scheduler::with_cache(jobs, ResultCache::on_disk(dir)),
        None => Scheduler::new(jobs),
    };
    let sink = match &options.store_dir {
        Some(dir) => match StoreSink::open(dir) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                if !sink.recovery_is_clean() {
                    eprintln!("repro: {}", sink.recovery_summary());
                }
                if sink.resumed_rows() > 0 {
                    eprintln!(
                        "repro: store resume: {} row(s) already committed; \
                         duplicate appends fold away",
                        sink.resumed_rows()
                    );
                }
                sched = sched.with_store(Arc::clone(&sink));
                Some(sink)
            }
            Err(e) => {
                // Opening the campaign record fails loudly: a sweep that
                // silently dropped its record would defeat the point.
                eprintln!("repro: cannot open store: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    let mut failures = 0;
    for (artifact, outcome, elapsed) in
        run_all(options.artifacts, options.fidelity, &options.machines, &sched)
    {
        match outcome {
            Ok(tables) => {
                for table in &tables {
                    println!("{table}");
                }
                if let Some(dir) = &options.csv_dir {
                    if let Err(e) = write_tables_csv(dir, artifact.id(), &tables) {
                        eprintln!("repro: {e}");
                        failures += 1;
                    }
                }
                if let Some(dir) = &options.trace_dir {
                    if let Err(e) = export_trace(artifact, options.fidelity, dir) {
                        eprintln!("repro: tracing {}: {e}", artifact.id());
                        failures += 1;
                    }
                }
                eprintln!("[{}] done in {elapsed:.1}s", artifact.id());
            }
            Err(e) => {
                eprintln!("repro: {} failed: {e}", artifact.id());
                failures += 1;
            }
        }
    }
    eprintln!("{}", sched.summary());
    if let Some(sink) = &sink {
        sink.flush();
        eprintln!("{}", sink.summary());
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Re-runs `artifact`'s representative configuration traced and writes
/// `<id>.trace.json` + `<id>.util.csv` into `dir`. The exported JSON is
/// validated before it is written, so a broken exporter fails loudly.
fn export_trace(
    artifact: Artifact,
    fidelity: Fidelity,
    dir: &std::path::Path,
) -> Result<(), String> {
    let bundle = match representative_trace(artifact, fidelity) {
        Ok(Some(bundle)) => bundle,
        Ok(None) => {
            eprintln!("[{}] no traced representative; skipping trace export", artifact.id());
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    let json = chrome_trace_json(&bundle.label, &bundle.trace);
    corescope_bench::validate_chrome_trace(&json)
        .map_err(|e| format!("exported trace is malformed: {e}"))?;
    let json_path = dir.join(format!("{}.trace.json", artifact.id()));
    std::fs::write(&json_path, &json)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    let csv_path = dir.join(format!("{}.util.csv", artifact.id()));
    std::fs::write(&csv_path, utilization_csv(&bundle.trace))
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    eprintln!(
        "[{}] traced '{}': {} + {}",
        artifact.id(),
        bundle.label,
        json_path.display(),
        csv_path.display()
    );
    Ok(())
}
