//! `corescope-serve` — batch simulation service over NDJSON.
//!
//! ```text
//! corescope-serve                      # serve requests from stdin
//! corescope-serve --jobs 8             # fan each batch out over 8 workers
//! corescope-serve --cache results/.cache  # persistent result cache
//! corescope-serve --listen 127.0.0.1:7777 # serve TCP clients instead
//! corescope-serve --batch 16           # bounded queue: ≤16 requests held
//! ```
//!
//! One request per line, one response line per request, in input order.
//! Two request shapes:
//!
//! - a [`Scenario`] object (the format `Scenario::to_json` emits), e.g.
//!   `{"system":"dmz","nranks":2,"workload":{"kind":"bsp",...}}` — run
//!   through the scheduler, answered with the engine result, the cache
//!   tier that satisfied it and the wall-clock of the batch it ran in;
//! - an artifact request `{"artifact":"t2","fidelity":"quick"}` — the
//!   harness regenerates the tables (scenario sweeps inside go through
//!   the same scheduler/cache) and the response carries them as CSV.
//!
//! Requests are executed in bounded batches of up to `--batch` lines —
//! the queue never holds more than that many requests, which is the
//! service's backpressure: a client streaming thousands of scenarios is
//! drained chunk by chunk. Responses for a chunk stream back before the
//! next chunk is read. Use `--batch 1` for strictly request-by-request
//! operation. A `sched: …` summary line lands on stderr at shutdown.

use corescope_bench::Fidelity;
use corescope_harness::Artifact;
use corescope_sched::{json, ResultCache, Scenario, Scheduler};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    jobs: usize,
    batch: usize,
    cache_dir: Option<PathBuf>,
    listen: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut jobs = 1;
    let mut batch = 32;
    let mut cache_dir = None;
    let mut listen = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--batch" | "-b" => {
                batch = args
                    .next()
                    .ok_or("--batch needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--batch: {e}"))?
                    .max(1);
            }
            "--cache" => {
                let dir = args.next().ok_or("--cache needs a directory")?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address (host:port)")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: corescope-serve [--jobs <n>] [--batch <n>] [--cache <dir>] \
                     [--listen <host:port>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(Options { jobs, batch, cache_dir, listen })
}

/// A parsed request line.
enum Request {
    Scenario(Box<Scenario>),
    Artifact { artifact: Artifact, fidelity: Fidelity },
}

fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line)?;
    if let Some(id) = value.get("artifact") {
        let id = id.as_str().ok_or("'artifact' must be a string id such as \"t2\"")?;
        let artifact = Artifact::from_id(id).map_err(|e| e.to_string())?;
        let fidelity = match value.get("fidelity").and_then(|f| f.as_str()) {
            None => Fidelity::Quick,
            Some(key) => Fidelity::parse(key)
                .ok_or_else(|| format!("unknown fidelity '{key}' (full or quick)"))?,
        };
        return Ok(Request::Artifact { artifact, fidelity });
    }
    Scenario::from_json(&value).map(|s| Request::Scenario(Box::new(s)))
}

/// Runs one bounded chunk of request lines and writes one response line
/// per request, in input order.
///
/// Scenario requests across the chunk are gathered into a single
/// scheduler batch, so they share workers and in-flight dedup; artifact
/// requests run one at a time (their internal sweeps already fan out
/// through the same scheduler).
fn handle_chunk(lines: &[String], sched: &Scheduler, out: &mut impl Write) -> std::io::Result<()> {
    let requests: Vec<Result<Request, String>> = lines.iter().map(|l| parse_request(l)).collect();
    let scenarios: Vec<Scenario> = requests
        .iter()
        .filter_map(|r| match r {
            Ok(Request::Scenario(s)) => Some((**s).clone()),
            _ => None,
        })
        .collect();
    let started = Instant::now();
    let mut outcomes = sched.run_batch(&scenarios).into_iter();
    let batch_ms = started.elapsed().as_secs_f64() * 1e3;

    for request in requests {
        let line = match request {
            Err(e) => error_line(&e),
            Ok(Request::Scenario(scenario)) => {
                let digest = scenario.digest();
                match outcomes.next().expect("one batch outcome per scenario request") {
                    Err(e) => error_line(&e.to_string()),
                    Ok(completed) => format!(
                        "{{\"ok\":true,\"digest\":\"{digest}\",\"cache\":\"{}\",\
                         \"batch_ms\":{},\"result\":{}}}",
                        completed.tier.key(),
                        json::num(batch_ms),
                        completed.result.to_json()
                    ),
                }
            }
            Ok(Request::Artifact { artifact, fidelity }) => {
                let started = Instant::now();
                match artifact.run_with(fidelity, sched) {
                    Err(e) => error_line(&e.to_string()),
                    Ok(tables) => {
                        let csv: Vec<String> = tables
                            .iter()
                            .map(|t| format!("\"{}\"", json::escape(&t.to_csv())))
                            .collect();
                        format!(
                            "{{\"ok\":true,\"artifact\":\"{}\",\"latency_ms\":{},\
                             \"tables\":[{}]}}",
                            artifact.id(),
                            json::num(started.elapsed().as_secs_f64() * 1e3),
                            csv.join(",")
                        )
                    }
                }
            }
        };
        writeln!(out, "{line}")?;
    }
    out.flush()
}

fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(message))
}

/// Drains `input` in bounded chunks of at most `batch` non-empty lines.
fn serve(
    input: impl BufRead,
    out: &mut impl Write,
    sched: &Scheduler,
    batch: usize,
) -> std::io::Result<()> {
    let mut lines = input.lines();
    loop {
        let mut chunk = Vec::new();
        for line in lines.by_ref() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            chunk.push(line);
            if chunk.len() >= batch {
                break;
            }
        }
        if chunk.is_empty() {
            return Ok(());
        }
        handle_chunk(&chunk, sched, out)?;
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("corescope-serve: {e}");
            std::process::exit(2);
        }
    };
    // Cap the fan-out at the cores we have; oversubscription only adds
    // context-switch overhead to CPU-bound simulation.
    let cores = std::thread::available_parallelism().map_or(options.jobs, |n| n.get());
    let jobs = options.jobs.min(cores.max(1));
    let sched = match &options.cache_dir {
        Some(dir) => Scheduler::with_cache(jobs, ResultCache::on_disk(dir)),
        None => Scheduler::new(jobs),
    };

    let outcome = match &options.listen {
        None => {
            let stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            serve(stdin, &mut stdout, &sched, options.batch)
        }
        Some(addr) => listen_loop(addr, &sched, options.batch),
    };
    eprintln!("{}", sched.summary());
    if let Err(e) = outcome {
        eprintln!("corescope-serve: {e}");
        std::process::exit(1);
    }
}

/// Accepts TCP clients one at a time; each connection speaks the same
/// NDJSON protocol as stdin mode and is drained to EOF before the next
/// client is accepted.
fn listen_loop(addr: &str, sched: &Scheduler, batch: usize) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("corescope-serve: listening on {}", listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        if let Err(e) = serve(reader, &mut writer, sched, batch) {
            eprintln!("corescope-serve: client {peer}: {e}");
        }
    }
    Ok(())
}
