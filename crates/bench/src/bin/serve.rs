//! `corescope-serve` — overload-safe batch simulation service over NDJSON.
//!
//! ```text
//! corescope-serve                       # serve requests from stdin
//! corescope-serve --jobs 8              # fan each batch out over 8 workers
//! corescope-serve --cache results/.cache   # persistent, cross-process-safe cache
//! corescope-serve --listen 127.0.0.1:7777  # serve concurrent TCP clients
//! corescope-serve --batch 16            # bounded queue: ≤16 requests held per client
//! corescope-serve --max-inflight 256    # global admission bound
//! corescope-serve --quota 32            # per-peer in-flight cap
//! corescope-serve --default-deadline 5000  # shed work older than 5s
//! ```
//!
//! One request per line, one response line per request, in input order.
//! Two request shapes:
//!
//! - a scenario object (the format `Scenario::to_json` emits), e.g.
//!   `{"system":"dmz","nranks":2,"workload":{"kind":"bsp",...}}` — run
//!   through the scheduler, answered with the engine result, the cache
//!   tier that satisfied it and the wall-clock of the batch it ran in.
//!   An optional `"deadline_ms"` field sheds the request with a typed
//!   `"kind":"deadline"` response if it cannot be dispatched in time;
//! - an artifact request `{"artifact":"t2","fidelity":"quick"}` — the
//!   harness regenerates the tables (scenario sweeps inside go through
//!   the same scheduler/cache) and the response carries them as CSV.
//!
//! Overload never queues unboundedly: past `--max-inflight` (globally)
//! or `--quota` (per peer) a request is answered immediately with
//! `{"ok":false,"kind":"overloaded"|"quota","retry_after_ms":…}`.
//! Malformed lines get `"kind":"bad-request"`, lines past
//! `--max-line-bytes` get `"kind":"too-large"`; the connection survives
//! all of them. SIGTERM/SIGINT trigger a graceful drain: stop accepting,
//! finish or deadline-out in-flight work, flush every connection, then
//! print the `serve:` and `sched:` summaries on stderr. The actual
//! service lives in `corescope_sched::serve`; this binary only parses
//! flags and wires signals.

use corescope_harness::serve_artifact_runner;
use corescope_sched::{ResultCache, Scheduler, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;

struct Options {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    listen: Option<String>,
    config: ServeConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut options =
        Options { jobs: 1, cache_dir: None, listen: None, config: ServeConfig::default() };
    let mut args = std::env::args().skip(1);
    fn count(flag: &str, value: Option<String>) -> Result<usize, String> {
        value
            .ok_or(format!("{flag} needs a count"))?
            .parse::<usize>()
            .map_err(|e| format!("{flag}: {e}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => options.jobs = count("--jobs", args.next())?.max(1),
            "--batch" | "-b" => options.config.batch = count("--batch", args.next())?.max(1),
            "--max-inflight" => {
                options.config.max_inflight = count("--max-inflight", args.next())?.max(1);
            }
            "--max-clients" => {
                options.config.max_clients = count("--max-clients", args.next())?.max(1);
            }
            "--quota" => options.config.quota = count("--quota", args.next())?.max(1),
            "--max-line-bytes" => {
                options.config.max_line_bytes = count("--max-line-bytes", args.next())?.max(64);
            }
            "--default-deadline" => {
                let ms = args
                    .next()
                    .ok_or("--default-deadline needs milliseconds")?
                    .parse::<f64>()
                    .map_err(|e| format!("--default-deadline: {e}"))?;
                if !ms.is_finite() || ms < 0.0 {
                    return Err("--default-deadline must be a non-negative number".to_string());
                }
                options.config.default_deadline_ms = Some(ms);
            }
            "--cache" => {
                let dir = args.next().ok_or("--cache needs a directory")?;
                options.cache_dir = Some(PathBuf::from(dir));
            }
            "--listen" => {
                options.listen = Some(args.next().ok_or("--listen needs an address (host:port)")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: corescope-serve [--jobs <n>] [--batch <n>] [--cache <dir>] \
                     [--listen <host:port>] [--max-inflight <n>] [--max-clients <n>] \
                     [--quota <n>] [--default-deadline <ms>] [--max-line-bytes <n>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(options)
}

/// Minimal SIGINT/SIGTERM hook: sets the server's shutdown flag so the
/// accept loop drains instead of dying mid-response. No signal crate is
/// vendored, so this declares `signal(2)` directly — the handler only
/// touches an atomic and re-arms the default disposition (both
/// async-signal-safe), so a second signal force-exits a stuck drain.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
        unsafe { signal(signum, SIG_DFL) };
    }

    pub fn install(flag: Arc<AtomicBool>) {
        let _ = FLAG.set(flag);
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install(_flag: Arc<AtomicBool>) {}
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("corescope-serve: {e}");
            std::process::exit(2);
        }
    };
    // Cap the fan-out at the cores we have; oversubscription only adds
    // context-switch overhead to CPU-bound simulation.
    let cores = std::thread::available_parallelism().map_or(options.jobs, |n| n.get());
    let jobs = options.jobs.min(cores.max(1));
    let sched = match &options.cache_dir {
        Some(dir) => match ResultCache::try_on_disk(dir) {
            Ok(cache) => Scheduler::with_cache(jobs, cache),
            Err(e) => {
                eprintln!("corescope-serve: {e}");
                std::process::exit(2);
            }
        },
        None => Scheduler::new(jobs),
    };
    let sched = Arc::new(sched);
    let server = Server::new(Arc::clone(&sched), options.config)
        .with_artifact_runner(serve_artifact_runner(Arc::clone(&sched)));
    signals::install(server.shutdown_flag());

    let outcome = match &options.listen {
        None => {
            let stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            server.serve_io(stdin, &mut stdout, "stdin")
        }
        Some(addr) => match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(local) => eprintln!("corescope-serve: listening on {local}"),
                    Err(_) => eprintln!("corescope-serve: listening on {addr}"),
                }
                server.listen(listener)
            }
            Err(e) => Err(e),
        },
    };
    eprintln!("{}", server.summary());
    eprintln!("{}", sched.summary());
    if let Err(e) = outcome {
        eprintln!("corescope-serve: {e}");
        std::process::exit(1);
    }
}
