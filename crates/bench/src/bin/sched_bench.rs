//! `sched_bench` — measures what the scheduler layer buys and emits
//! `BENCH_sched.json`.
//!
//! ```text
//! sched_bench                    # x5 at quick fidelity → BENCH_sched.json
//! sched_bench --artifact f9      # a different scenario-sweep artifact
//! sched_bench --out bench/       # write the JSON elsewhere
//! ```
//!
//! Three timed passes of one sweep artifact:
//!
//! 1. cold, `jobs = 1` — the serial baseline;
//! 2. cold, `jobs = 8` — work-stealing fan-out over the same sweep;
//! 3. warm, `jobs = 8` — a repeat on the same scheduler, which should be
//!    cache-hit-dominated (zero scheduled engine runs).
//!
//! The three passes must produce byte-identical tables — the bench exits
//! non-zero if they do not, so CI catches a nondeterministic executor or
//! an unsound cache along with any performance regression.

use corescope_harness::{Artifact, Fidelity};
use corescope_sched::{json, Scheduler};
use std::time::Instant;

fn parse_args() -> Result<(Artifact, std::path::PathBuf), String> {
    let mut artifact = Artifact::X5;
    let mut out = std::path::PathBuf::from("BENCH_sched.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--artifact" | "-a" => {
                let id = args.next().ok_or("--artifact needs an id")?;
                artifact = Artifact::from_id(&id).map_err(|e| e.to_string())?;
            }
            "--out" | "-o" => {
                out = std::path::PathBuf::from(args.next().ok_or("--out needs a path")?);
                if out.is_dir() {
                    out = out.join("BENCH_sched.json");
                }
            }
            "--help" | "-h" => {
                println!("usage: sched_bench [--artifact <id>] [--out <path>]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok((artifact, out))
}

fn timed_run(artifact: Artifact, sched: &Scheduler) -> Result<(String, f64), String> {
    let started = Instant::now();
    let tables = artifact.run_with(Fidelity::Quick, sched).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed().as_secs_f64();
    let csv: String = tables.iter().map(|t| t.to_csv()).collect();
    Ok((csv, elapsed))
}

fn run() -> Result<(), String> {
    let (artifact, out) = parse_args()?;

    let serial = Scheduler::new(1);
    let (csv_1, jobs1_s) = timed_run(artifact, &serial)?;

    let parallel = Scheduler::new(8);
    let (csv_8, jobs8_s) = timed_run(artifact, &parallel)?;
    let cold = parallel.stats();

    let (csv_warm, warm_s) = timed_run(artifact, &parallel)?;
    let warm = parallel.stats();

    if csv_1 != csv_8 {
        return Err("jobs 1 and jobs 8 tables differ — executor is order-unstable".into());
    }
    if csv_1 != csv_warm {
        return Err("cold and warm tables differ — cache is unsound".into());
    }
    let warm_engine_runs = warm.engine_runs - cold.engine_runs;
    let warm_hits = (warm.hits_memory + warm.hits_disk) - (cold.hits_memory + cold.hits_disk);
    if warm_engine_runs > 0 {
        return Err(format!(
            "warm pass re-ran {warm_engine_runs} scheduled engine runs — cache misses on replay"
        ));
    }

    let body = format!(
        "{{\"bench\":\"sched\",\"artifact\":\"{}\",\"fidelity\":\"quick\",\
         \"jobs1_s\":{},\"jobs8_s\":{},\"speedup\":{},\"warm_s\":{},\
         \"cold_engine_runs\":{},\"warm_engine_runs\":{warm_engine_runs},\
         \"warm_cache_hits\":{warm_hits}}}\n",
        artifact.id(),
        json::num(jobs1_s),
        json::num(jobs8_s),
        json::num(jobs1_s / jobs8_s),
        json::num(warm_s),
        cold.engine_runs,
    );
    std::fs::write(&out, &body).map_err(|e| format!("writing {}: {e}", out.display()))?;
    print!("{body}");
    eprintln!("{}", parallel.summary());
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sched_bench: {e}");
        std::process::exit(1);
    }
}
