//! `serve_bench` — concurrent load generator for the NDJSON service,
//! emitting `BENCH_serve.json`.
//!
//! ```text
//! serve_bench                        # 4 clients × 24 requests → BENCH_serve.json
//! serve_bench --clients 8 --requests 64
//! serve_bench --max-inflight 4       # provoke the admission gate
//! serve_bench --out bench/           # write the JSON elsewhere
//! ```
//!
//! Starts an in-process [`Server`] on a loopback port and drives it with
//! N concurrent clients, each pipelining M requests of an adversarial
//! mix: tiny BSP scenarios (spread over distinct digests), periodic
//! artifact requests (large CSV responses), deadline-storm requests
//! (`"deadline_ms":1`), and outright garbage lines. Every client then
//! validates the protocol invariants:
//!
//! - exactly one response line per request line, then EOF — no desync;
//! - responses arrive in request order (checked via the scenario digest
//!   echoed in each `ok` line);
//! - every non-`ok` response is typed (`bad-request`, `overloaded`,
//!   `quota`, `deadline`, …), and garbage lines are *always* answered
//!   with `bad-request` — never silently dropped.
//!
//! Violations make the bench exit non-zero, so CI catches protocol
//! regressions along with performance ones. The emitted JSON carries
//! p50/p99 response latency, throughput, shed rate and the measured
//! graceful-drain time (request in flight at SIGTERM-equivalent →
//! listener fully joined).

use corescope_harness::serve_artifact_runner;
use corescope_sched::{json, Scenario, Scheduler, ServeConfig, Server, System, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

struct Options {
    clients: usize,
    requests: usize,
    jobs: usize,
    max_inflight: usize,
    quota: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        clients: 4,
        requests: 24,
        jobs: 2,
        max_inflight: 1024,
        quota: 256,
        out: std::path::PathBuf::from("BENCH_serve.json"),
    };
    let mut args = std::env::args().skip(1);
    fn count(flag: &str, value: Option<String>) -> Result<usize, String> {
        value
            .ok_or(format!("{flag} needs a count"))?
            .parse::<usize>()
            .map_err(|e| format!("{flag}: {e}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" | "-c" => options.clients = count("--clients", args.next())?.max(1),
            "--requests" | "-n" => options.requests = count("--requests", args.next())?.max(1),
            "--jobs" | "-j" => options.jobs = count("--jobs", args.next())?.max(1),
            "--max-inflight" => {
                options.max_inflight = count("--max-inflight", args.next())?.max(1);
            }
            "--quota" => options.quota = count("--quota", args.next())?.max(1),
            "--out" | "-o" => {
                options.out = std::path::PathBuf::from(args.next().ok_or("--out needs a path")?);
                if options.out.is_dir() {
                    options.out = options.out.join("BENCH_serve.json");
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve_bench [--clients <n>] [--requests <n>] [--jobs <n>] \
                     [--max-inflight <n>] [--quota <n>] [--out <path>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(options)
}

/// One request in a client's script, with its acceptable responses.
enum Planned {
    /// A scenario; `ok` responses must echo this digest.
    Scenario { line: String, digest: String, deadline: bool },
    /// An artifact request (`t1`); `ok` responses must name it.
    Artifact,
    /// A garbage line; the only legal answer is `bad-request`.
    Garbage,
}

fn bsp(steps: usize) -> Scenario {
    Scenario::new(
        System::Dmz,
        2,
        Workload::Bsp { steps, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
    )
}

fn plan(client: usize, i: usize) -> Planned {
    if i % 8 == 7 {
        return Planned::Artifact;
    }
    if i % 11 == 10 {
        return Planned::Garbage;
    }
    let scenario = bsp(1 + (client * 31 + i * 7) % 16);
    let digest = scenario.digest().hex();
    let deadline = i % 5 == 4;
    let line = if deadline {
        scenario.to_json().replacen('{', "{\"deadline_ms\":1,", 1)
    } else {
        scenario.to_json()
    };
    Planned::Scenario { line, digest, deadline }
}

#[derive(Default)]
struct ClientReport {
    latencies_ms: Vec<f64>,
    responses: usize,
    sheds: usize,
    violations: Vec<String>,
}

fn response_kind(value: &json::Value) -> Option<&str> {
    value.get("kind").and_then(json::Value::as_str)
}

fn run_client(addr: SocketAddr, client: usize, requests: usize) -> ClientReport {
    let mut report = ClientReport::default();
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            report.violations.push(format!("client {client}: connect failed: {e}"));
            return report;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(e) => {
            report.violations.push(format!("client {client}: clone failed: {e}"));
            return report;
        }
    };
    let planned: Vec<Planned> = (0..requests).map(|i| plan(client, i)).collect();
    let started = Instant::now();
    for request in &planned {
        let line = match request {
            Planned::Scenario { line, .. } => line.clone(),
            Planned::Artifact => "{\"artifact\":\"t1\",\"fidelity\":\"quick\"}".to_string(),
            Planned::Garbage => format!("!!! not json {client} !!!"),
        };
        if let Err(e) = writeln!(writer, "{line}") {
            report.violations.push(format!("client {client}: write failed: {e}"));
            return report;
        }
    }
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Write);

    let reader = BufReader::new(stream);
    let mut lines = reader.lines();
    for (i, request) in planned.iter().enumerate() {
        let line = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => {
                report.violations.push(format!("client {client}: read failed at {i}: {e}"));
                return report;
            }
            None => {
                report
                    .violations
                    .push(format!("client {client}: EOF after {i} of {requests} responses"));
                return report;
            }
        };
        report.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        report.responses += 1;
        let value = match json::parse(&line) {
            Ok(value) => value,
            Err(e) => {
                report.violations.push(format!("client {client}: unparseable response {i}: {e}"));
                continue;
            }
        };
        let ok = matches!(value.get("ok"), Some(json::Value::Bool(true)));
        let kind = response_kind(&value).map(str::to_string);
        match request {
            Planned::Scenario { digest, deadline, .. } => {
                if ok {
                    let echoed = value.get("digest").and_then(json::Value::as_str);
                    if echoed != Some(digest.as_str()) {
                        report.violations.push(format!(
                            "client {client}: response {i} out of order \
                             (digest {echoed:?}, wanted {digest})"
                        ));
                    }
                } else {
                    let mut allowed = vec!["overloaded", "quota"];
                    if *deadline {
                        allowed.push("deadline");
                    }
                    match kind.as_deref() {
                        Some(k) if allowed.contains(&k) => report.sheds += 1,
                        other => report.violations.push(format!(
                            "client {client}: response {i} unexpected kind {other:?}"
                        )),
                    }
                }
            }
            Planned::Artifact => {
                if ok {
                    if value.get("artifact").and_then(json::Value::as_str) != Some("t1") {
                        report
                            .violations
                            .push(format!("client {client}: response {i} is not artifact t1"));
                    }
                } else {
                    match kind.as_deref() {
                        Some("overloaded") | Some("quota") => report.sheds += 1,
                        other => report.violations.push(format!(
                            "client {client}: artifact {i} unexpected kind {other:?}"
                        )),
                    }
                }
            }
            Planned::Garbage => {
                if ok || kind.as_deref() != Some("bad-request") {
                    report.violations.push(format!(
                        "client {client}: garbage line {i} not answered bad-request"
                    ));
                }
            }
        }
    }
    if let Some(extra) = lines.next() {
        report.violations.push(format!("client {client}: extra response after EOF: {extra:?}"));
    }
    report
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Measures graceful drain: a live connection sends one request, waits
/// for its (intact) response — so the server is provably mid-connection —
/// then shutdown is requested and the probe times how long until the
/// server closes it with a clean EOF, with no torn trailing bytes.
fn measure_drain(
    addr: SocketAddr,
    server: &Server,
    violations: &mut Vec<String>,
) -> Result<f64, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("drain probe connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("drain probe clone: {e}"))?;
    writeln!(writer, "{}", bsp(3).to_json()).map_err(|e| format!("drain probe write: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|e| format!("drain probe read: {e}"))?;
    if json::parse(response.trim_end()).is_err() {
        violations.push(format!("drain probe: torn response line: {response:?}"));
    }
    let started = Instant::now();
    server.request_shutdown();
    // The connection stays open with no pending request; the drain must
    // close it cleanly (EOF, not reset) once every worker has joined.
    for line in reader.lines() {
        match line {
            Ok(extra) => violations.push(format!("drain probe: unexpected line: {extra:?}")),
            Err(e) => {
                violations.push(format!("drain probe: unclean close: {e}"));
                break;
            }
        }
    }
    Ok(started.elapsed().as_secs_f64() * 1e3)
}

fn run() -> Result<(), String> {
    let options = parse_args()?;
    let sched = Arc::new(Scheduler::new(options.jobs));
    let config = ServeConfig {
        max_inflight: options.max_inflight,
        quota: options.quota,
        ..ServeConfig::default()
    };
    let server = Server::new(Arc::clone(&sched), config)
        .with_artifact_runner(serve_artifact_runner(Arc::clone(&sched)));
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let started = Instant::now();
    let mut violations: Vec<String> = Vec::new();
    let (reports, load_s, drain_ms, drain_violations) = std::thread::scope(|scope| {
        let server = &server;
        let listen = scope.spawn(move || server.listen(listener));
        let clients: Vec<_> = (0..options.clients)
            .map(|c| scope.spawn(move || run_client(addr, c, options.requests)))
            .collect();
        let reports: Vec<ClientReport> =
            clients.into_iter().map(|h| h.join().expect("client thread panicked")).collect();
        let load_s = started.elapsed().as_secs_f64();
        let mut drain_violations = Vec::new();
        let drain_ms = match measure_drain(addr, server, &mut drain_violations) {
            Ok(ms) => ms,
            Err(e) => {
                drain_violations.push(e);
                0.0
            }
        };
        if let Err(e) = listen.join().expect("listener thread panicked") {
            drain_violations.push(format!("listener failed: {e}"));
        }
        (reports, load_s, drain_ms, drain_violations)
    });
    violations.extend(drain_violations);

    let mut latencies: Vec<f64> = Vec::new();
    let mut responses = 0usize;
    let mut sheds = 0usize;
    for report in reports {
        latencies.extend(report.latencies_ms);
        responses += report.responses;
        sheds += report.sheds;
        violations.extend(report.violations);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let total_requests = options.clients * options.requests;
    let shed_rate = if responses == 0 { 1.0 } else { sheds as f64 / responses as f64 };
    if responses > 0 && shed_rate >= 0.9 {
        violations.push(format!("shed rate {shed_rate:.2} — the service shed almost everything"));
    }

    let body = format!(
        "{{\"bench\":\"serve\",\"clients\":{},\"requests_per_client\":{},\"requests\":{},\
         \"responses\":{responses},\"p50_ms\":{},\"p99_ms\":{},\"throughput_rps\":{},\
         \"shed_rate\":{},\"drain_ms\":{},\"protocol_violations\":{}}}\n",
        options.clients,
        options.requests,
        total_requests,
        json::num(percentile(&latencies, 50.0)),
        json::num(percentile(&latencies, 99.0)),
        json::num(if load_s > 0.0 { responses as f64 / load_s } else { 0.0 }),
        json::num(shed_rate),
        json::num(drain_ms),
        violations.len(),
    );
    std::fs::write(&options.out, &body)
        .map_err(|e| format!("writing {}: {e}", options.out.display()))?;
    print!("{body}");
    eprintln!("{}", server.summary());
    eprintln!("{}", sched.summary());
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("serve_bench: VIOLATION: {v}");
        }
        return Err(format!("{} protocol violation(s)", violations.len()));
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("serve_bench: {e}");
        std::process::exit(1);
    }
}
