//! MPI implementation cost profiles and lock sub-layers.
//!
//! Calibrated to reproduce the *shapes* of the paper's Figures 13–15:
//!
//! * MPICH2 has high small-message overhead, "becom\[ing\] comparable with
//!   the others with messages of approximately 16 KB", and the best
//!   large-message copy bandwidth;
//! * LAM is fastest below ~16 KB;
//! * OpenMPI wins for intermediate sizes;
//! * the SysV semaphore sub-layer adds microseconds per message ("the
//!   high cost of the Linux implementation of the SystemV semaphore"),
//!   while USysV spin locks cost ~100 ns.

use corescope_machine::CalibParams;
use std::fmt;

/// Shared-memory lock sub-layer used by the MPI progress engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockLayer {
    /// System V semaphores: every message pays a semop() syscall pair.
    SysV,
    /// User-space spin locks ("usysv" in LAM).
    USysV,
}

impl LockLayer {
    /// Per-message lock overhead in seconds.
    pub fn cost(self) -> f64 {
        match self {
            // Two semop syscalls at ~1.2 us each on a 2006 kernel.
            LockLayer::SysV => 2.4e-6,
            LockLayer::USysV => 0.12e-6,
        }
    }

    /// Lowercase runtime-option name as used in the paper's figures.
    pub fn key(self) -> &'static str {
        match self {
            LockLayer::SysV => "sysv",
            LockLayer::USysV => "usysv",
        }
    }
}

impl fmt::Display for LockLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One of the MPI implementations compared in Section 3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiImpl {
    /// MPICH2 1.0.3.
    Mpich2,
    /// LAM 7.1.2.
    Lam,
    /// OpenMPI 1.0.1.
    OpenMpi,
}

impl MpiImpl {
    /// All three implementations, in the paper's order.
    pub fn all() -> [MpiImpl; 3] {
        [MpiImpl::Mpich2, MpiImpl::Lam, MpiImpl::OpenMpi]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MpiImpl::Mpich2 => "MPICH2",
            MpiImpl::Lam => "LAM",
            MpiImpl::OpenMpi => "OpenMPI",
        }
    }

    /// The implementation's cost profile.
    pub fn profile(self) -> MpiProfile {
        match self {
            // High per-message software overhead, strong large-message
            // copy path.
            MpiImpl::Mpich2 => MpiProfile {
                implementation: self,
                overhead: 3.2e-6,
                copy_bw: 1.45e9,
                eager_threshold: 128.0 * 1024.0,
                rendezvous_handshake: 1.0e-6,
                default_lock: LockLayer::USysV,
                lock_sysv: LockLayer::SysV.cost(),
                lock_usysv: LockLayer::USysV.cost(),
                same_socket_boost: MpiProfile::SAME_SOCKET_BW_BOOST,
            },
            // Lowest small-message overhead, weakest bulk copy.
            MpiImpl::Lam => MpiProfile {
                implementation: self,
                overhead: 0.7e-6,
                copy_bw: 1.0e9,
                eager_threshold: 64.0 * 1024.0,
                rendezvous_handshake: 1.4e-6,
                // LAM's stock build used the SysV semaphore sub-layer;
                // "usysv" was the tuning the paper evaluates.
                default_lock: LockLayer::SysV,
                lock_sysv: LockLayer::SysV.cost(),
                lock_usysv: LockLayer::USysV.cost(),
                same_socket_boost: MpiProfile::SAME_SOCKET_BW_BOOST,
            },
            // Middle overhead, good intermediate-size streaming.
            MpiImpl::OpenMpi => MpiProfile {
                implementation: self,
                overhead: 1.4e-6,
                copy_bw: 1.3e9,
                eager_threshold: 64.0 * 1024.0,
                rendezvous_handshake: 1.2e-6,
                default_lock: LockLayer::USysV,
                lock_sysv: LockLayer::SysV.cost(),
                lock_usysv: LockLayer::USysV.cost(),
                same_socket_boost: MpiProfile::SAME_SOCKET_BW_BOOST,
            },
        }
    }

    /// The implementation's profile with the lock costs and same-socket
    /// boost taken from a calibration point instead of the shipped
    /// constants. `CalibParams::paper_2006()` reproduces
    /// [`MpiImpl::profile`] exactly.
    pub fn profile_with(self, p: &CalibParams) -> MpiProfile {
        MpiProfile {
            lock_sysv: p.lock_sysv,
            lock_usysv: p.lock_usysv,
            same_socket_boost: p.same_socket_boost,
            ..self.profile()
        }
    }
}

impl fmt::Display for MpiImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost parameters of one MPI implementation's shared-memory transport.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiProfile {
    /// Which implementation this profile describes.
    pub implementation: MpiImpl,
    /// Per-message software overhead in seconds (matching, header
    /// processing), excluding locks.
    pub overhead: f64,
    /// Single-message shared-memory copy bandwidth in bytes/s (the
    /// two-copy in/out path through a shm buffer).
    pub copy_bw: f64,
    /// Messages larger than this use the rendezvous protocol.
    pub eager_threshold: f64,
    /// Extra handshake cost for rendezvous messages, seconds.
    pub rendezvous_handshake: f64,
    /// Lock sub-layer used when the caller does not override it.
    pub default_lock: LockLayer,
    /// Per-message [`LockLayer::SysV`] cost in seconds (calibratable;
    /// defaults to [`LockLayer::cost`]).
    pub lock_sysv: f64,
    /// Per-message [`LockLayer::USysV`] cost in seconds (calibratable;
    /// defaults to [`LockLayer::cost`]).
    pub lock_usysv: f64,
    /// Intra-socket copy bandwidth boost this profile applies
    /// (calibratable; defaults to
    /// [`MpiProfile::SAME_SOCKET_BW_BOOST`]).
    pub same_socket_boost: f64,
}

impl MpiProfile {
    /// Intra-node bandwidth boost for messages that stay *within* one
    /// multi-core socket (shared L2-adjacent path instead of crossing
    /// coherent HyperTransport). The paper measures "approximately 10 to
    /// 13%" — we use 12%.
    pub const SAME_SOCKET_BW_BOOST: f64 = 1.12;

    /// Per-message cost of a lock sub-layer under this profile's
    /// calibration. Equals [`LockLayer::cost`] for profiles built by
    /// [`MpiImpl::profile`].
    pub fn lock_cost(&self, lock: LockLayer) -> f64 {
        match lock {
            LockLayer::SysV => self.lock_sysv,
            LockLayer::USysV => self.lock_usysv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysv_is_microseconds_usysv_is_not() {
        assert!(LockLayer::SysV.cost() > 1e-6);
        assert!(LockLayer::USysV.cost() < 0.5e-6);
    }

    #[test]
    fn lam_has_lowest_overhead_mpich2_highest() {
        let m = MpiImpl::Mpich2.profile();
        let l = MpiImpl::Lam.profile();
        let o = MpiImpl::OpenMpi.profile();
        assert!(l.overhead < o.overhead && o.overhead < m.overhead);
    }

    #[test]
    fn mpich2_has_best_bulk_copy() {
        let m = MpiImpl::Mpich2.profile();
        let l = MpiImpl::Lam.profile();
        let o = MpiImpl::OpenMpi.profile();
        assert!(m.copy_bw > o.copy_bw && o.copy_bw > l.copy_bw);
    }

    #[test]
    fn figure14_crossover_near_16kb() {
        // Effective PingPong bandwidth b(s) = s / (overhead + s/copy_bw).
        // MPICH2 must lose to the others at 1 KB and beat LAM at 1 MB.
        let bw = |p: &MpiProfile, s: f64| s / (p.overhead + s / p.copy_bw);
        let (m, l, o) =
            (MpiImpl::Mpich2.profile(), MpiImpl::Lam.profile(), MpiImpl::OpenMpi.profile());
        assert!(bw(&l, 1024.0) > bw(&o, 1024.0));
        assert!(bw(&l, 1024.0) > bw(&m, 1024.0));
        assert!(bw(&o, 64.0 * 1024.0) > bw(&l, 64.0 * 1024.0));
        assert!(bw(&m, 4e6) > bw(&l, 4e6));
        assert!(bw(&m, 4e6) > bw(&o, 4e6));
    }

    #[test]
    fn profiles_carry_the_shipped_calibration() {
        for imp in MpiImpl::all() {
            let p = imp.profile();
            assert_eq!(p.lock_cost(LockLayer::SysV), LockLayer::SysV.cost());
            assert_eq!(p.lock_cost(LockLayer::USysV), LockLayer::USysV.cost());
            assert_eq!(p.same_socket_boost, MpiProfile::SAME_SOCKET_BW_BOOST);
        }
    }

    #[test]
    fn profile_with_paper_point_matches_profile() {
        let point = CalibParams::paper_2006();
        for imp in MpiImpl::all() {
            assert_eq!(imp.profile_with(&point), imp.profile());
        }
    }

    #[test]
    fn profile_with_overrides_lock_costs() {
        let mut point = CalibParams::paper_2006();
        point.lock_sysv = 5.0e-6;
        point.same_socket_boost = 1.25;
        let p = MpiImpl::Lam.profile_with(&point);
        assert_eq!(p.lock_cost(LockLayer::SysV), 5.0e-6);
        assert_eq!(p.same_socket_boost, 1.25);
        // Non-calibrated fields still come from the base profile.
        assert_eq!(p.overhead, MpiImpl::Lam.profile().overhead);
    }

    #[test]
    fn names_and_keys() {
        assert_eq!(MpiImpl::OpenMpi.to_string(), "OpenMPI");
        assert_eq!(LockLayer::SysV.to_string(), "sysv");
        assert_eq!(MpiImpl::all().len(), 3);
    }
}
