//! Collective communication algorithms.
//!
//! Real message schedules, not analytic formulas: each collective expands
//! into the point-to-point rounds the classic MPICH algorithms use, so
//! topology, lock costs and link contention shape collective performance
//! exactly as they shaped the paper's NAS/HPCC results.

use crate::comm::CommWorld;

impl CommWorld<'_> {
    /// Dissemination barrier (log₂ *n* rounds of 0-byte messages): the
    /// costed alternative to the free engine barrier.
    #[allow(clippy::needless_range_loop)] // r is a rank id, not just an index
    pub fn barrier_mpi(&mut self) -> &mut Self {
        let n = self.size();
        if n <= 1 {
            return self;
        }
        let mut k = 1;
        while k < n {
            let tags: Vec<u64> = (0..n).map(|_| self.fresh_tag()).collect();
            // Every rank sends to (r + k) % n and receives from
            // (r - k) % n; tag indexed by the *sender* keeps matching
            // unambiguous.
            for r in 0..n {
                self.send(r, (r + k) % n, 0.0, tags[r]);
            }
            for r in 0..n {
                let src = (r + n - k) % n;
                self.recv(r, src, tags[src]);
            }
            k <<= 1;
        }
        self
    }

    /// Binomial-tree broadcast of `bytes` from `root`.
    pub fn bcast(&mut self, root: usize, bytes: f64) -> &mut Self {
        let n = self.size();
        if n <= 1 {
            return self;
        }
        let vrank = |r: usize| (r + n - root) % n;
        let unvrank = |v: usize| (v + root) % n;

        // Precompute one tag per tree edge so sender and receiver agree:
        // the parent of virtual rank v is v with its lowest set bit
        // cleared.
        let mut tag_of = std::collections::HashMap::new();
        for v in 1..n {
            let low = v & v.wrapping_neg();
            tag_of.insert((unvrank(v - low), unvrank(v)), self.fresh_tag());
        }

        // Per rank: receive from the parent (except root), then send to
        // children from the highest mask down.
        for r in 0..n {
            let v = vrank(r);
            let mut mask;
            if v == 0 {
                mask = n.next_power_of_two();
            } else {
                let low = v & v.wrapping_neg();
                let parent = unvrank(v - low);
                self.recv(r, parent, tag_of[&(parent, r)]);
                mask = low;
            }
            mask >>= 1;
            while mask > 0 {
                if v + mask < n {
                    let dst = unvrank(v + mask);
                    self.send(r, dst, bytes, tag_of[&(r, dst)]);
                }
                mask >>= 1;
            }
        }
        self
    }

    /// Recursive-doubling allreduce of `bytes` per rank (general *n*:
    /// non-power-of-two ranks fold into the power-of-two core first).
    pub fn allreduce(&mut self, bytes: f64) -> &mut Self {
        let n = self.size();
        if n <= 1 {
            return self;
        }
        let p = prev_power_of_two(n);

        // Fold: ranks p..n send their contribution to r - p.
        for extra in p..n {
            self.p2p(extra, extra - p, bytes);
        }
        // Recursive doubling among ranks 0..p.
        let mut mask = 1;
        while mask < p {
            // All pairs in this round exchange simultaneously.
            for r in 0..p {
                let partner = r ^ mask;
                if r < partner {
                    self.sendrecv(r, partner, bytes);
                }
            }
            mask <<= 1;
        }
        // Unfold: results back to the folded ranks.
        for extra in p..n {
            self.p2p(extra - p, extra, bytes);
        }
        self
    }

    /// Pairwise-exchange all-to-all: every rank sends `bytes_per_pair` to
    /// every other rank over *n - 1* shifted rounds (the MPICH long-
    /// message algorithm, and the traffic pattern behind NAS FT's
    /// transpose).
    #[allow(clippy::needless_range_loop)] // r is a rank id, not just an index
    pub fn alltoall(&mut self, bytes_per_pair: f64) -> &mut Self {
        let n = self.size();
        for shift in 1..n {
            let tags: Vec<u64> = (0..n).map(|_| self.fresh_tag()).collect();
            for r in 0..n {
                self.send(r, (r + shift) % n, bytes_per_pair, tags[r]);
            }
            for r in 0..n {
                let src = (r + n - shift) % n;
                self.recv(r, src, tags[src]);
            }
        }
        self
    }

    /// Ring allgather: *n - 1* steps, each rank forwarding `bytes` to its
    /// right neighbour.
    pub fn allgather(&mut self, bytes: f64) -> &mut Self {
        let n = self.size();
        for _ in 1..n {
            self.ring_shift(bytes);
        }
        self
    }

    /// One ring step: every rank sends `bytes` right and receives from the
    /// left (the HPCC ring bandwidth pattern).
    #[allow(clippy::needless_range_loop)] // r is a rank id, not just an index
    pub fn ring_shift(&mut self, bytes: f64) -> &mut Self {
        let n = self.size();
        if n <= 1 {
            return self;
        }
        let tags: Vec<u64> = (0..n).map(|_| self.fresh_tag()).collect();
        for r in 0..n {
            self.send(r, (r + 1) % n, bytes, tags[r]);
        }
        for r in 0..n {
            let src = (r + n - 1) % n;
            self.recv(r, src, tags[src]);
        }
        self
    }

    /// One IMB *Exchange* iteration: every rank exchanges `bytes` with
    /// both chain neighbours (periodic boundary), i.e. two sends and two
    /// receives per rank.
    pub fn exchange_step(&mut self, bytes: f64) -> &mut Self {
        let n = self.size();
        if n <= 1 {
            return self;
        }
        let left_tags: Vec<u64> = (0..n).map(|_| self.fresh_tag()).collect();
        let right_tags: Vec<u64> = (0..n).map(|_| self.fresh_tag()).collect();
        for r in 0..n {
            let left = (r + n - 1) % n;
            let right = (r + 1) % n;
            self.send(r, left, bytes, left_tags[r]);
            self.send(r, right, bytes, right_tags[r]);
        }
        for r in 0..n {
            let left = (r + n - 1) % n;
            let right = (r + 1) % n;
            // Our left neighbour sent us its "right" message and vice
            // versa.
            self.recv(r, left, right_tags[left]);
            self.recv(r, right, left_tags[right]);
        }
        self
    }

    /// Recursive-doubling exchange restricted to a subgroup of ranks
    /// (e.g. the per-socket master ranks of a hybrid run): log₂|group|
    /// rounds of pairwise sendrecv carrying `bytes` each.
    pub fn sendrecv_among(&mut self, group: &[usize], bytes: f64) -> &mut Self {
        let mut mask = 1;
        while mask < group.len() {
            for (idx, &r) in group.iter().enumerate() {
                let pidx = idx ^ mask;
                if pidx < group.len() && idx < pidx {
                    self.sendrecv(r, group[pidx], bytes);
                }
            }
            mask <<= 1;
        }
        self
    }

    /// Nearest-neighbour halo exchange on a 1-D decomposition without the
    /// periodic wrap (POP's baroclinic pattern reduced to one dimension).
    pub fn halo_1d(&mut self, bytes: f64) -> &mut Self {
        let n = self.size();
        for r in 0..n.saturating_sub(1) {
            self.sendrecv(r, r + 1, bytes);
        }
        self
    }
}

fn prev_power_of_two(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{LockLayer, MpiImpl};
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};

    fn world(machine: &Machine, n: usize) -> CommWorld<'_> {
        let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, n).unwrap();
        CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
    }

    #[test]
    fn prev_power_of_two_values() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(8), 8);
        assert_eq!(prev_power_of_two(12), 8);
    }

    #[test]
    fn collectives_complete_for_all_sizes() {
        let m = Machine::new(systems::longs());
        for n in [1, 2, 3, 4, 5, 7, 8, 12, 16] {
            let mut w = world(&m, n);
            w.barrier_mpi();
            w.allreduce(1024.0);
            w.alltoall(512.0);
            w.allgather(256.0);
            w.bcast(0, 4096.0);
            w.exchange_step(2048.0);
            w.halo_1d(128.0);
            let report = w.run().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(report.makespan > 0.0 || n == 1);
        }
    }

    #[test]
    fn bcast_message_count_is_n_minus_one() {
        let m = Machine::new(systems::longs());
        for n in [2, 3, 4, 6, 8, 16] {
            let mut w = world(&m, n);
            w.bcast(0, 1024.0);
            let report = w.run().unwrap();
            assert_eq!(report.metrics.total_messages(), n - 1, "bcast over {n} ranks");
        }
    }

    #[test]
    fn bcast_works_from_nonzero_root() {
        let m = Machine::new(systems::longs());
        for root in 0..8 {
            let mut w = world(&m, 8);
            w.bcast(root, 1024.0);
            let report = w.run().unwrap();
            assert_eq!(report.metrics.total_messages(), 7);
        }
    }

    #[test]
    fn alltoall_message_count() {
        let m = Machine::new(systems::longs());
        let n = 8;
        let mut w = world(&m, n);
        w.alltoall(1024.0);
        let report = w.run().unwrap();
        assert_eq!(report.metrics.total_messages(), n * (n - 1));
    }

    #[test]
    fn allreduce_scales_with_log_n() {
        let m = Machine::new(systems::longs());
        let bytes = 64.0;
        let mut times = Vec::new();
        for n in [2, 4, 8] {
            let mut w = world(&m, n);
            for _ in 0..50 {
                w.allreduce(bytes);
            }
            times.push(w.run().unwrap().makespan);
        }
        // log2 growth: each doubling adds about one round, so the 8-rank
        // time should be well under 3x the 2-rank time.
        assert!(times[2] > times[0]);
        assert!(times[2] < times[0] * 5.0, "{times:?}");
    }

    #[test]
    fn exchange_moves_four_messages_per_rank_pair_structure() {
        let m = Machine::new(systems::dmz());
        let n = 4;
        let mut w = world(&m, n);
        w.exchange_step(1024.0);
        let report = w.run().unwrap();
        assert_eq!(report.metrics.total_messages(), 2 * n);
    }

    #[test]
    fn sysv_lock_slows_small_collectives() {
        let m = Machine::new(systems::longs());
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 8).unwrap();
        let run = |lock: LockLayer| {
            let mut w = CommWorld::new(&m, placements.clone(), MpiImpl::Lam.profile(), lock);
            for _ in 0..20 {
                w.allreduce(8.0);
            }
            w.run().unwrap().makespan
        };
        let sysv = run(LockLayer::SysV);
        let usysv = run(LockLayer::USysV);
        assert!(
            sysv > 1.5 * usysv,
            "SysV semaphores must dominate small-message time: {sysv:.2e} vs {usysv:.2e}"
        );
    }
}
