//! The [`CommWorld`] program builder: an MPI communicator over placed
//! ranks.
//!
//! A `CommWorld` owns one [`Program`] per rank and appends compute phases
//! and messages to them; [`CommWorld::run`] executes the programs on the
//! machine's engine. Message costs are resolved through
//! [`crate::transport::message_cost`] at append time, so the topology and
//! lock sub-layer are baked into each message exactly once.

use crate::profiles::{LockLayer, MpiProfile};
use crate::transport::message_cost;
use corescope_machine::engine::{Engine, Observed, RankPlacement, RunReport};
use corescope_machine::program::{ComputePhase, Program};
use corescope_machine::{
    CheckpointPolicy, Error, FaultPlan, Machine, RankId, Result, RetryPolicy, TraceConfig,
};

/// ULFM-style failure notification: instead of deadlocking on a dead
/// peer, surviving ranks learn which rank failed and when the failure
/// detector delivered the news. Returned by
/// [`CommWorld::run_fault_tolerant`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankFailure {
    /// The rank that died.
    pub rank: RankId,
    /// Simulated time the kill fired.
    pub failed_at: f64,
    /// When survivors were notified (`failed_at` plus the detection
    /// timeout) — the earliest time a [`CommWorld::shrink`] + re-plan can
    /// begin.
    pub detected_at: f64,
}

/// Outcome of a fault-tolerant run: either the job finished (recovering
/// internally when a checkpoint policy was armed), or a rank died
/// unrecoverably and the survivors hold a typed notification.
#[derive(Debug)]
pub enum FtOutcome {
    /// The job ran to completion.
    Completed(RunReport),
    /// A rank died with no checkpoint policy to roll back to.
    RankFailed(RankFailure),
}

/// An MPI communicator bound to placed ranks on a machine.
#[derive(Debug, Clone)]
pub struct CommWorld<'m> {
    machine: &'m Machine,
    placements: Vec<RankPlacement>,
    profile: MpiProfile,
    lock: LockLayer,
    programs: Vec<Program>,
    next_tag: u64,
    checkpoint: Option<CheckpointPolicy>,
    retry: Option<RetryPolicy>,
}

impl<'m> CommWorld<'m> {
    /// Creates a world over `placements`, one rank per placement.
    pub fn new(
        machine: &'m Machine,
        placements: Vec<RankPlacement>,
        profile: MpiProfile,
        lock: LockLayer,
    ) -> Self {
        let n = placements.len();
        Self {
            machine,
            placements,
            profile,
            lock,
            programs: vec![Program::new(); n],
            next_tag: 0,
            checkpoint: None,
            retry: None,
        }
    }

    /// Creates a world using the profile's default lock sub-layer.
    pub fn with_default_lock(
        machine: &'m Machine,
        placements: Vec<RankPlacement>,
        profile: MpiProfile,
    ) -> Self {
        let lock = profile.default_lock;
        Self::new(machine, placements, profile, lock)
    }

    /// Arms coordinated checkpoint/restart for every run launched from
    /// this world: a [`corescope_machine::FaultKind::RankKill`] rolls the
    /// job back to the last completed checkpoint instead of failing it.
    #[must_use]
    pub fn with_recovery(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Arms transport-level timeout/retry for every run launched from
    /// this world: transfers caught on a link severed by
    /// [`corescope_machine::FaultKind::LinkFail`] are retransmitted with
    /// exponential backoff instead of starving the run.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// A fresh engine carrying this world's recovery and retry policies.
    fn engine(&self) -> Engine<'m> {
        let mut engine = Engine::new(self.machine);
        if let Some(policy) = &self.checkpoint {
            engine = engine.with_recovery(policy.clone());
        }
        if let Some(policy) = &self.retry {
            engine = engine.with_retry(policy.clone());
        }
        engine
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.placements.len()
    }

    /// The machine the world runs on.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// The rank placements.
    pub fn placements(&self) -> &[RankPlacement] {
        &self.placements
    }

    /// The per-rank programs built so far.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// A tag never handed out before by this world.
    pub fn fresh_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// Appends a compute phase to one rank.
    pub fn compute(&mut self, rank: usize, phase: ComputePhase) -> &mut Self {
        self.programs[rank].compute(phase);
        self
    }

    /// Appends per-rank compute phases produced by `f` (return `None` to
    /// skip a rank).
    pub fn compute_all(&mut self, mut f: impl FnMut(usize) -> Option<ComputePhase>) -> &mut Self {
        for rank in 0..self.size() {
            if let Some(phase) = f(rank) {
                self.programs[rank].compute(phase);
            }
        }
        self
    }

    /// Appends a fixed delay to one rank.
    pub fn delay(&mut self, rank: usize, seconds: f64) -> &mut Self {
        self.programs[rank].delay(seconds);
        self
    }

    /// Appends a raw send (no matching recv — pair it yourself).
    pub fn send(&mut self, src: usize, dst: usize, bytes: f64, tag: u64) -> &mut Self {
        let cost =
            message_cost(self.machine, &self.placements, &self.profile, self.lock, src, dst, bytes);
        self.programs[src].send(RankId::new(dst), bytes, tag, cost);
        self
    }

    /// Appends a raw recv. The receiver pays one lock acquisition to
    /// dequeue the message from the shared-memory transport — serial CPU
    /// time that no pipelining can hide, and the second half of why the
    /// SysV semaphore sub-layer is so expensive per message.
    pub fn recv(&mut self, dst: usize, src: usize, tag: u64) -> &mut Self {
        self.programs[dst].recv(RankId::new(src), tag);
        self.programs[dst].delay(self.profile.lock_cost(self.lock));
        self
    }

    /// A matched point-to-point transfer: send on `src`, recv on `dst`,
    /// with a fresh tag.
    pub fn p2p(&mut self, src: usize, dst: usize, bytes: f64) -> &mut Self {
        let tag = self.fresh_tag();
        self.send(src, dst, bytes, tag);
        self.recv(dst, src, tag);
        self
    }

    /// A bidirectional exchange between `a` and `b` (both send, then both
    /// receive — safe because sends are buffered).
    pub fn sendrecv(&mut self, a: usize, b: usize, bytes: f64) -> &mut Self {
        let t_ab = self.fresh_tag();
        let t_ba = self.fresh_tag();
        self.send(a, b, bytes, t_ab);
        self.send(b, a, bytes, t_ba);
        self.recv(b, a, t_ab);
        self.recv(a, b, t_ba);
        self
    }

    /// An engine-level barrier across every rank (zero software cost; use
    /// [`crate::collectives`]' `barrier_mpi` for a costed dissemination
    /// barrier).
    pub fn barrier(&mut self) -> &mut Self {
        for p in &mut self.programs {
            p.barrier();
        }
        self
    }

    /// Runs the built programs on a fresh engine.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (deadlock, bad placements, event limit).
    pub fn run(&self) -> Result<RunReport> {
        self.engine().run(&self.placements, &self.programs)
    }

    /// Runs on a caller-configured engine (failure injection, event caps).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_on(&self, engine: &Engine<'_>) -> Result<RunReport> {
        engine.run(&self.placements, &self.programs)
    }

    /// Runs the built programs under a schedule of mid-run faults (see
    /// [`corescope_machine::faults`]).
    ///
    /// # Errors
    ///
    /// Propagates engine errors, including the typed fault outcomes
    /// ([`corescope_machine::Error::RankStalled`],
    /// [`corescope_machine::Error::ZeroCapacityRoute`], watchdog budgets)
    /// and plan-validation failures.
    pub fn run_with_faults(&self, plan: &FaultPlan) -> Result<RunReport> {
        self.engine().run_with_faults(&self.placements, &self.programs, plan)
    }

    /// Runs the built programs and keeps everything observed along the
    /// way — partial metrics on error exits and, with
    /// [`TraceConfig::on`], a full time-resolved
    /// [`corescope_machine::RunTrace`].
    pub fn observe(&self, plan: &FaultPlan, trace: TraceConfig) -> Observed {
        self.engine().observe(&self.placements, &self.programs, plan, trace)
    }

    /// Runs under faults with ULFM-style failure semantics: a rank kill
    /// that the engine cannot recover from (no checkpoint policy) comes
    /// back as a typed [`RankFailure`] notification delivered to the
    /// survivors after `detection_timeout` seconds, never as a deadlock —
    /// the caller can then [`CommWorld::shrink`] and re-plan. Every other
    /// error still propagates.
    ///
    /// # Errors
    ///
    /// Everything [`CommWorld::run_with_faults`] can return *except*
    /// [`Error::RankKilled`], which becomes `Ok(FtOutcome::RankFailed)`.
    pub fn run_fault_tolerant(
        &self,
        plan: &FaultPlan,
        detection_timeout: f64,
    ) -> Result<FtOutcome> {
        match self.run_with_faults(plan) {
            Ok(report) => Ok(FtOutcome::Completed(report)),
            Err(Error::RankKilled { rank, at_time }) => Ok(FtOutcome::RankFailed(RankFailure {
                rank,
                failed_at: at_time,
                detected_at: at_time + detection_timeout,
            })),
            Err(e) => Err(e),
        }
    }

    /// Rebuilds the communicator over the survivors of `failed` —
    /// `MPI_Comm_shrink`. The new world keeps this world's machine,
    /// profile, lock layer and recovery policies, renumbers the surviving
    /// ranks densely in their old order, and starts with empty programs:
    /// the post-failure epoch re-plans its work (collectives appended to
    /// the shrunken world automatically use its smaller size).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when a failed rank is out of range
    /// or no rank survives.
    pub fn shrink(&self, failed: &[RankId]) -> Result<CommWorld<'m>> {
        let mut dead = vec![false; self.size()];
        for f in failed {
            if f.index() >= self.size() {
                return Err(Error::InvalidSpec(format!(
                    "cannot shrink: {f} is not in a world of {} ranks",
                    self.size()
                )));
            }
            dead[f.index()] = true;
        }
        let placements: Vec<RankPlacement> = self
            .placements
            .iter()
            .zip(&dead)
            .filter(|(_, &d)| !d)
            .map(|(p, _)| p.clone())
            .collect();
        if placements.is_empty() {
            return Err(Error::InvalidSpec("cannot shrink to an empty world".into()));
        }
        let mut world = CommWorld::new(self.machine, placements, self.profile.clone(), self.lock);
        world.checkpoint = self.checkpoint.clone();
        world.retry = self.retry.clone();
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::MpiImpl;
    use corescope_affinity::Scheme;
    use corescope_machine::systems;
    use corescope_machine::TrafficProfile;

    fn world(machine: &Machine, n: usize) -> CommWorld<'_> {
        let placements = Scheme::OneMpiLocalAlloc.resolve(machine, n).unwrap();
        CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
    }

    #[test]
    fn p2p_transfers_complete() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.p2p(0, 1, 1024.0);
        let report = w.run().unwrap();
        assert!(report.makespan > 0.0);
        assert_eq!(report.metrics.total_messages(), 1);
    }

    #[test]
    fn sendrecv_is_symmetric_and_deadlock_free() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        for _ in 0..100 {
            w.sendrecv(0, 1, 1e6);
        }
        let report = w.run().unwrap();
        assert_eq!(report.metrics.total_messages(), 200);
    }

    #[test]
    fn fresh_tags_are_unique() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        let a = w.fresh_tag();
        let b = w.fresh_tag();
        assert_ne!(a, b);
    }

    #[test]
    fn compute_all_skips_none() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.compute_all(|rank| {
            (rank == 0).then(|| {
                ComputePhase::new("work", 1e9, TrafficProfile::none()).with_efficiency(1.0)
            })
        });
        let report = w.run().unwrap();
        assert!(report.finish_of(RankId::new(0)) > 0.0);
        assert_eq!(report.finish_of(RankId::new(1)), 0.0);
    }

    #[test]
    fn barrier_holds_back_fast_ranks() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.delay(0, 1e-3);
        w.barrier();
        let report = w.run().unwrap();
        assert!(report.finish_of(RankId::new(1)) >= 1e-3 * 0.999);
    }

    #[test]
    fn unrecoverable_kill_becomes_a_typed_failure_notification() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        // Rank 0 waits on a message rank 1 will never send once killed.
        w.compute(1, ComputePhase::new("work", 0.0, TrafficProfile::stream(1e9)));
        w.p2p(1, 0, 1e6);
        let plan = FaultPlan::new().rank_kill(0.05, RankId::new(1));
        let outcome = w.run_fault_tolerant(&plan, 2e-3).unwrap();
        match outcome {
            FtOutcome::RankFailed(failure) => {
                assert_eq!(failure.rank, RankId::new(1));
                assert!((failure.failed_at - 0.05).abs() < 1e-9);
                assert!((failure.detected_at - 0.052).abs() < 1e-9);
            }
            FtOutcome::Completed(report) => panic!("expected a failure, got {report:?}"),
        }
    }

    #[test]
    fn armed_recovery_completes_through_a_kill() {
        let m = Machine::new(systems::dmz());
        let placements = Scheme::OneMpiLocalAlloc.resolve(&m, 2).unwrap();
        let mut w = CommWorld::new(&m, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
            .with_recovery(CheckpointPolicy::new(0.02, 1e7));
        w.compute_all(|_| Some(ComputePhase::new("work", 0.0, TrafficProfile::stream(5e8))));
        w.barrier();
        let plan = FaultPlan::new().rank_kill(0.05, RankId::new(0));
        let outcome = w.run_fault_tolerant(&plan, 1e-3).unwrap();
        match outcome {
            FtOutcome::Completed(report) => {
                assert_eq!(report.metrics.recoveries, 1);
                assert!(report.metrics.checkpoints_taken >= 1);
            }
            FtOutcome::RankFailed(f) => panic!("recovery was armed, got failure {f:?}"),
        }
    }

    #[test]
    fn shrink_renumbers_survivors_and_collectives_replan() {
        let m = Machine::new(systems::dmz());
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 4).unwrap();
        let mut w = CommWorld::new(&m, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV);
        w.allreduce(1024.0);
        // Rank 2 dies; the shrunken world re-plans the collective over 3.
        let survivors = w.shrink(&[RankId::new(2)]).unwrap();
        assert_eq!(survivors.size(), 3);
        assert_eq!(survivors.placements()[0], w.placements()[0]);
        assert_eq!(survivors.placements()[2], w.placements()[3]);
        // Fresh epoch: no stale sends aimed at the dead rank.
        assert!(survivors.programs().iter().all(|p| p.ops().is_empty()));
        let mut survivors = survivors;
        survivors.allreduce(1024.0);
        let report = survivors.run().unwrap();
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn shrink_rejects_bad_failure_sets() {
        let m = Machine::new(systems::dmz());
        let w = world(&m, 2);
        assert!(w.shrink(&[RankId::new(9)]).is_err());
        assert!(w.shrink(&[RankId::new(0), RankId::new(1)]).is_err());
    }
}
