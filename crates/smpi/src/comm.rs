//! The [`CommWorld`] program builder: an MPI communicator over placed
//! ranks.
//!
//! A `CommWorld` owns one [`Program`] per rank and appends compute phases
//! and messages to them; [`CommWorld::run`] executes the programs on the
//! machine's engine. Message costs are resolved through
//! [`crate::transport::message_cost`] at append time, so the topology and
//! lock sub-layer are baked into each message exactly once.

use crate::profiles::{LockLayer, MpiProfile};
use crate::transport::message_cost;
use corescope_machine::engine::{Engine, Observed, RankPlacement, RunReport};
use corescope_machine::program::{ComputePhase, Program};
use corescope_machine::{FaultPlan, Machine, RankId, Result, TraceConfig};

/// An MPI communicator bound to placed ranks on a machine.
#[derive(Debug, Clone)]
pub struct CommWorld<'m> {
    machine: &'m Machine,
    placements: Vec<RankPlacement>,
    profile: MpiProfile,
    lock: LockLayer,
    programs: Vec<Program>,
    next_tag: u64,
}

impl<'m> CommWorld<'m> {
    /// Creates a world over `placements`, one rank per placement.
    pub fn new(
        machine: &'m Machine,
        placements: Vec<RankPlacement>,
        profile: MpiProfile,
        lock: LockLayer,
    ) -> Self {
        let n = placements.len();
        Self { machine, placements, profile, lock, programs: vec![Program::new(); n], next_tag: 0 }
    }

    /// Creates a world using the profile's default lock sub-layer.
    pub fn with_default_lock(
        machine: &'m Machine,
        placements: Vec<RankPlacement>,
        profile: MpiProfile,
    ) -> Self {
        let lock = profile.default_lock;
        Self::new(machine, placements, profile, lock)
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.placements.len()
    }

    /// The machine the world runs on.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// The rank placements.
    pub fn placements(&self) -> &[RankPlacement] {
        &self.placements
    }

    /// The per-rank programs built so far.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// A tag never handed out before by this world.
    pub fn fresh_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// Appends a compute phase to one rank.
    pub fn compute(&mut self, rank: usize, phase: ComputePhase) -> &mut Self {
        self.programs[rank].compute(phase);
        self
    }

    /// Appends per-rank compute phases produced by `f` (return `None` to
    /// skip a rank).
    pub fn compute_all(&mut self, mut f: impl FnMut(usize) -> Option<ComputePhase>) -> &mut Self {
        for rank in 0..self.size() {
            if let Some(phase) = f(rank) {
                self.programs[rank].compute(phase);
            }
        }
        self
    }

    /// Appends a fixed delay to one rank.
    pub fn delay(&mut self, rank: usize, seconds: f64) -> &mut Self {
        self.programs[rank].delay(seconds);
        self
    }

    /// Appends a raw send (no matching recv — pair it yourself).
    pub fn send(&mut self, src: usize, dst: usize, bytes: f64, tag: u64) -> &mut Self {
        let cost =
            message_cost(self.machine, &self.placements, &self.profile, self.lock, src, dst, bytes);
        self.programs[src].send(RankId::new(dst), bytes, tag, cost);
        self
    }

    /// Appends a raw recv. The receiver pays one lock acquisition to
    /// dequeue the message from the shared-memory transport — serial CPU
    /// time that no pipelining can hide, and the second half of why the
    /// SysV semaphore sub-layer is so expensive per message.
    pub fn recv(&mut self, dst: usize, src: usize, tag: u64) -> &mut Self {
        self.programs[dst].recv(RankId::new(src), tag);
        self.programs[dst].delay(self.lock.cost());
        self
    }

    /// A matched point-to-point transfer: send on `src`, recv on `dst`,
    /// with a fresh tag.
    pub fn p2p(&mut self, src: usize, dst: usize, bytes: f64) -> &mut Self {
        let tag = self.fresh_tag();
        self.send(src, dst, bytes, tag);
        self.recv(dst, src, tag);
        self
    }

    /// A bidirectional exchange between `a` and `b` (both send, then both
    /// receive — safe because sends are buffered).
    pub fn sendrecv(&mut self, a: usize, b: usize, bytes: f64) -> &mut Self {
        let t_ab = self.fresh_tag();
        let t_ba = self.fresh_tag();
        self.send(a, b, bytes, t_ab);
        self.send(b, a, bytes, t_ba);
        self.recv(b, a, t_ab);
        self.recv(a, b, t_ba);
        self
    }

    /// An engine-level barrier across every rank (zero software cost; use
    /// [`crate::collectives`]' `barrier_mpi` for a costed dissemination
    /// barrier).
    pub fn barrier(&mut self) -> &mut Self {
        for p in &mut self.programs {
            p.barrier();
        }
        self
    }

    /// Runs the built programs on a fresh engine.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (deadlock, bad placements, event limit).
    pub fn run(&self) -> Result<RunReport> {
        Engine::new(self.machine).run(&self.placements, &self.programs)
    }

    /// Runs on a caller-configured engine (failure injection, event caps).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_on(&self, engine: &Engine<'_>) -> Result<RunReport> {
        engine.run(&self.placements, &self.programs)
    }

    /// Runs the built programs under a schedule of mid-run faults (see
    /// [`corescope_machine::faults`]).
    ///
    /// # Errors
    ///
    /// Propagates engine errors, including the typed fault outcomes
    /// ([`corescope_machine::Error::RankStalled`],
    /// [`corescope_machine::Error::ZeroCapacityRoute`], watchdog budgets)
    /// and plan-validation failures.
    pub fn run_with_faults(&self, plan: &FaultPlan) -> Result<RunReport> {
        Engine::new(self.machine).run_with_faults(&self.placements, &self.programs, plan)
    }

    /// Runs the built programs and keeps everything observed along the
    /// way — partial metrics on error exits and, with
    /// [`TraceConfig::on`], a full time-resolved
    /// [`corescope_machine::RunTrace`].
    pub fn observe(&self, plan: &FaultPlan, trace: TraceConfig) -> Observed {
        Engine::new(self.machine).observe(&self.placements, &self.programs, plan, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::MpiImpl;
    use corescope_affinity::Scheme;
    use corescope_machine::systems;
    use corescope_machine::TrafficProfile;

    fn world(machine: &Machine, n: usize) -> CommWorld<'_> {
        let placements = Scheme::OneMpiLocalAlloc.resolve(machine, n).unwrap();
        CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
    }

    #[test]
    fn p2p_transfers_complete() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.p2p(0, 1, 1024.0);
        let report = w.run().unwrap();
        assert!(report.makespan > 0.0);
        assert_eq!(report.metrics.total_messages(), 1);
    }

    #[test]
    fn sendrecv_is_symmetric_and_deadlock_free() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        for _ in 0..100 {
            w.sendrecv(0, 1, 1e6);
        }
        let report = w.run().unwrap();
        assert_eq!(report.metrics.total_messages(), 200);
    }

    #[test]
    fn fresh_tags_are_unique() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        let a = w.fresh_tag();
        let b = w.fresh_tag();
        assert_ne!(a, b);
    }

    #[test]
    fn compute_all_skips_none() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.compute_all(|rank| {
            (rank == 0).then(|| {
                ComputePhase::new("work", 1e9, TrafficProfile::none()).with_efficiency(1.0)
            })
        });
        let report = w.run().unwrap();
        assert!(report.finish_of(RankId::new(0)) > 0.0);
        assert_eq!(report.finish_of(RankId::new(1)), 0.0);
    }

    #[test]
    fn barrier_holds_back_fast_ranks() {
        let m = Machine::new(systems::dmz());
        let mut w = world(&m, 2);
        w.delay(0, 1e-3);
        w.barrier();
        let report = w.run().unwrap();
        assert!(report.finish_of(RankId::new(1)) >= 1e-3 * 0.999);
    }
}
