//! # corescope-smpi
//!
//! A simulated MPI runtime over [`corescope_machine`].
//!
//! The paper studies three MPI implementations (MPICH2 1.0.3, LAM 7.1.2,
//! OpenMPI 1.0.1) and two LAM shared-memory lock sub-layers (SysV
//! semaphores vs. "USysV" spin locks) on multi-core Opteron nodes. This
//! crate reproduces that design space:
//!
//! * [`profiles`] — per-implementation cost profiles and lock layers;
//! * [`transport`] — the per-message cost model (software overhead + lock
//!   cost + HyperTransport hop latency + shared-memory copy bandwidth);
//! * [`comm`] / [`collectives`] — a [`CommWorld`] builder that appends
//!   point-to-point and real collective algorithms (recursive doubling,
//!   pairwise exchange, binomial broadcast, rings) to per-rank programs;
//! * [`imb`] — Intel-MPI-Benchmark-style PingPong and Exchange runners.
//!
//! ```
//! use corescope_machine::{systems, Machine};
//! use corescope_affinity::Scheme;
//! use corescope_smpi::{imb, profiles::{LockLayer, MpiImpl}};
//!
//! # fn main() -> Result<(), corescope_machine::Error> {
//! let machine = Machine::new(systems::dmz());
//! let placements = Scheme::OneMpiLocalAlloc.resolve(&machine, 2)?;
//! let profile = MpiImpl::OpenMpi.profile();
//! let t = imb::pingpong_time(&machine, &placements, &profile, LockLayer::USysV, 8.0, 10)?;
//! // Small-message half-round-trip on one node: a few microseconds.
//! assert!(t > 5e-7 && t < 2e-5);
//! # Ok(())
//! # }
//! ```

pub mod collectives;
pub mod comm;
pub mod imb;
pub mod profiles;
pub mod transport;

pub use comm::{CommWorld, FtOutcome, RankFailure};
pub use profiles::{LockLayer, MpiImpl, MpiProfile};
