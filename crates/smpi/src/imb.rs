//! Intel MPI Benchmark (IMB) style measurement helpers.
//!
//! The paper's Figures 14–17 report PingPong and Exchange latency and
//! bandwidth across message sizes, MPI implementations, and binding
//! configurations. These helpers build the benchmark programs, run them
//! on the engine, and reduce makespans to the IMB metrics.

use crate::comm::CommWorld;
use crate::profiles::{LockLayer, MpiProfile};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{Machine, Result};

/// The message sizes IMB sweeps (powers of two from 1 B to 4 MiB).
pub fn imb_message_sizes() -> Vec<f64> {
    (0..=22).map(|i| (1u64 << i) as f64).collect()
}

/// PingPong time per half round trip (the IMB "t" column), in seconds.
///
/// Ranks 0 and 1 of `placements` bounce one message of `bytes` back and
/// forth `reps` times; any further placements are parked processes that
/// sit idle (the paper's "2 procs, unbound, 2 parked" configuration).
///
/// # Errors
///
/// Propagates engine errors; fails if fewer than two placements are given.
pub fn pingpong_time(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    bytes: f64,
    reps: usize,
) -> Result<f64> {
    if placements.len() < 2 {
        return Err(corescope_machine::Error::InvalidSpec(
            "pingpong needs at least two ranks".into(),
        ));
    }
    let mut world = CommWorld::new(machine, placements.to_vec(), profile.clone(), lock);
    for _ in 0..reps {
        world.p2p(0, 1, bytes);
        world.p2p(1, 0, bytes);
    }
    let report = world.run()?;
    Ok(report.makespan / (2.0 * reps as f64))
}

/// PingPong bandwidth in bytes/s for one message size.
///
/// # Errors
///
/// Propagates [`pingpong_time`] errors.
pub fn pingpong_bandwidth(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    bytes: f64,
    reps: usize,
) -> Result<f64> {
    let t = pingpong_time(machine, placements, profile, lock, bytes, reps)?;
    Ok(bytes / t)
}

/// Exchange time per iteration, in seconds, over the first `active`
/// ranks of `placements` (IMB runs the chain over the whole communicator;
/// extra placements are parked).
///
/// # Errors
///
/// Propagates engine errors; fails for fewer than two active ranks.
pub fn exchange_time(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    active: usize,
    bytes: f64,
    reps: usize,
) -> Result<f64> {
    if active < 2 || active > placements.len() {
        return Err(corescope_machine::Error::InvalidSpec(format!(
            "exchange needs 2..={} active ranks, got {active}",
            placements.len()
        )));
    }
    // Build the world over only the active ranks, then pad with parked
    // placements so the machine sees the same occupancy.
    let mut world = CommWorld::new(machine, placements[..active].to_vec(), profile.clone(), lock);
    for _ in 0..reps {
        world.exchange_step(bytes);
    }
    // Parked ranks: placements occupy cores but run no program. Rebuild
    // with full placement set and the same programs padded with empties.
    let mut programs = world.programs().to_vec();
    programs.resize(placements.len(), corescope_machine::Program::new());
    let engine = corescope_machine::Engine::new(machine);
    let report = engine.run(placements, &programs)?;
    Ok(report.makespan / reps as f64)
}

/// IMB Exchange bandwidth: each rank moves 4 × `bytes` per iteration.
///
/// # Errors
///
/// Propagates [`exchange_time`] errors.
pub fn exchange_bandwidth(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    active: usize,
    bytes: f64,
    reps: usize,
) -> Result<f64> {
    let t = exchange_time(machine, placements, profile, lock, active, bytes, reps)?;
    Ok(4.0 * bytes / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::MpiImpl;
    use corescope_affinity::Scheme;
    use corescope_machine::systems;

    fn dmz() -> Machine {
        Machine::new(systems::dmz())
    }

    #[test]
    fn sizes_span_1b_to_4mib() {
        let s = imb_message_sizes();
        assert_eq!(s[0], 1.0);
        assert_eq!(*s.last().unwrap(), 4.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn pingpong_latency_is_microseconds_for_small_messages() {
        let m = dmz();
        let p = Scheme::OneMpiLocalAlloc.resolve(&m, 2).unwrap();
        let prof = MpiImpl::Lam.profile();
        let t = pingpong_time(&m, &p, &prof, LockLayer::USysV, 1.0, 20).unwrap();
        assert!(t > 0.5e-6 && t < 5e-6, "t = {:.2} us", t * 1e6);
    }

    #[test]
    fn pingpong_bandwidth_approaches_copy_bw_for_large_messages() {
        let m = dmz();
        let p = Scheme::OneMpiLocalAlloc.resolve(&m, 2).unwrap();
        let prof = MpiImpl::Mpich2.profile();
        let bw = pingpong_bandwidth(&m, &p, &prof, LockLayer::USysV, 4e6, 3).unwrap();
        assert!(bw > 0.75 * prof.copy_bw && bw <= prof.copy_bw * 1.01, "bw = {bw:.3e}");
    }

    #[test]
    fn same_socket_pingpong_beats_cross_socket() {
        let m = dmz();
        let prof = MpiImpl::OpenMpi.profile();
        // Bound to one socket (cores 0, 1) vs. spread across sockets.
        let near = Scheme::TwoMpiLocalAlloc.resolve(&m, 2).unwrap();
        let far = Scheme::OneMpiLocalAlloc.resolve(&m, 2).unwrap();
        let bw_near = pingpong_bandwidth(&m, &near, &prof, LockLayer::USysV, 1e6, 3).unwrap();
        let bw_far = pingpong_bandwidth(&m, &far, &prof, LockLayer::USysV, 1e6, 3).unwrap();
        let gain = bw_near / bw_far;
        assert!(
            gain > 1.05 && gain < 1.2,
            "paper reports ~10-13% intra-socket benefit, got {gain:.3}"
        );
    }

    #[test]
    fn pingpong_time_is_independent_of_reps() {
        // The 2×reps p2p ops are strictly dependent — no pipelining may
        // shorten later round trips. Guard the per-half-round-trip time
        // against engine dependency-handling changes.
        let m = dmz();
        let p = Scheme::OneMpiLocalAlloc.resolve(&m, 2).unwrap();
        let prof = MpiImpl::Mpich2.profile();
        let reference = pingpong_time(&m, &p, &prof, LockLayer::USysV, 1024.0, 1).unwrap();
        for reps in [2, 7, 40] {
            let t = pingpong_time(&m, &p, &prof, LockLayer::USysV, 1024.0, reps).unwrap();
            assert!(
                (t - reference).abs() <= reference * 1e-6,
                "reps={reps}: {t:e} vs reference {reference:e}"
            );
        }
    }

    #[test]
    fn exchange_time_scales_with_message_size() {
        let m = dmz();
        let p = Scheme::Default.resolve(&m, 2).unwrap();
        let prof = MpiImpl::OpenMpi.profile();
        let t_small = exchange_time(&m, &p, &prof, LockLayer::USysV, 2, 64.0, 5).unwrap();
        let t_large = exchange_time(&m, &p, &prof, LockLayer::USysV, 2, 1e6, 5).unwrap();
        assert!(t_large > 5.0 * t_small);
    }

    #[test]
    fn parked_processes_do_not_crash() {
        let m = dmz();
        let p = Scheme::Default.resolve(&m, 4).unwrap();
        let prof = MpiImpl::OpenMpi.profile();
        let t = exchange_time(&m, &p, &prof, LockLayer::USysV, 2, 1024.0, 5).unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn rejects_single_rank() {
        let m = dmz();
        let p = Scheme::Default.resolve(&m, 1).unwrap();
        let prof = MpiImpl::OpenMpi.profile();
        assert!(pingpong_time(&m, &p, &prof, LockLayer::USysV, 8.0, 1).is_err());
        assert!(exchange_time(&m, &p, &prof, LockLayer::USysV, 1, 8.0, 1).is_err());
    }
}
