//! Per-message cost resolution.
//!
//! Turns (implementation profile, lock layer, endpoint cores, message
//! size) into the [`MessageCost`] the engine consumes. The three classes
//! of communication channel the paper identifies — within a multi-core
//! socket, between sockets of an SMP node, and the system interconnect —
//! fall out of the hop count and the same-socket bandwidth boost.

use crate::profiles::{LockLayer, MpiProfile};
use corescope_machine::engine::RankPlacement;
use corescope_machine::program::MessageCost;
use corescope_machine::Machine;

/// Resolves the cost of one message between two placed ranks.
///
/// The cost breaks down as:
/// * `setup` — software overhead + one lock acquisition + per-hop
///   HyperTransport latency (+ a handshake and a second lock for
///   rendezvous-sized messages);
/// * `cap` — the shared-memory copy bandwidth, boosted 12% when both
///   ranks share a socket (Figures 16/17) — link contention may lower the
///   achieved rate below this;
/// * `sender_busy` — the time the sender is occupied before continuing
///   (setup plus its share of the copy).
///
/// All messages are modelled as buffered (non-blocking senders): the
/// rendezvous *cost* is charged, but the engine-level blocking rendezvous
/// is not used, which keeps symmetric exchanges deadlock-free exactly the
/// way `MPI_Sendrecv` does.
pub fn message_cost(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    src: usize,
    dst: usize,
    bytes: f64,
) -> MessageCost {
    let s_src = machine.socket_of(placements[src].core);
    let s_dst = machine.socket_of(placements[dst].core);
    let hops = machine.topology().hops(s_src, s_dst) as f64;
    let hop_latency = machine.spec().link.hop_latency;

    let rendezvous_sized = bytes > profile.eager_threshold;
    let mut setup = profile.overhead + profile.lock_cost(lock) + hops * hop_latency;
    if rendezvous_sized {
        // Request-to-send / clear-to-send round trip plus a second lock.
        setup += profile.rendezvous_handshake + profile.lock_cost(lock) + 2.0 * hops * hop_latency;
    }

    let mut cap = profile.copy_bw;
    if s_src == s_dst {
        cap *= profile.same_socket_boost;
    }

    // The copies read the source buffer and write the destination buffer:
    // page placement shapes MPI throughput ("clearly, the MPI sub-layer
    // is affecting page placement" — the paper's STREAM/PTRANS vs NUMA
    // option interactions). Interleaved or membind-misplaced buffers pull
    // most pages over HyperTransport, halving the copy rate in the limit.
    let locality = 0.5
        * (placements[src].layout.fraction(machine.node_of_socket(s_src))
            + placements[dst].layout.fraction(machine.node_of_socket(s_dst)));
    cap *= 0.5 + 0.5 * locality;
    setup += (1.0 - locality) * hops.max(1.0) * hop_latency;

    // The sender drives the copy into the shm buffer; approximate its
    // busy time by the uncontended transfer time.
    let sender_busy = setup + bytes / cap;

    MessageCost { setup, cap, sender_busy, rendezvous: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::MpiImpl;
    use corescope_affinity::Scheme;
    use corescope_machine::systems;

    fn setup_machine() -> (Machine, Vec<RankPlacement>) {
        let m = Machine::new(systems::longs());
        let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 16).unwrap();
        (m, p)
    }

    #[test]
    fn same_socket_is_cheaper_than_cross_socket() {
        let (m, p) = setup_machine();
        let prof = MpiImpl::OpenMpi.profile();
        // Ranks 0 and 1 share a socket under the packed mapping; 0 and 2
        // do not.
        let near = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 1, 8.0);
        let far = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 2, 8.0);
        assert!(near.setup < far.setup, "hop latency must show up");
        assert!(near.cap > far.cap, "same-socket boost must show up");
        let boost = near.cap / far.cap;
        assert!((boost - 1.12).abs() < 1e-9);
    }

    #[test]
    fn sysv_lock_dominates_small_message_setup() {
        let (m, p) = setup_machine();
        let prof = MpiImpl::Lam.profile();
        let sysv = message_cost(&m, &p, &prof, LockLayer::SysV, 0, 2, 8.0);
        let usysv = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 2, 8.0);
        assert!(sysv.setup > 2.0 * usysv.setup, "sysv {} vs usysv {}", sysv.setup, usysv.setup);
    }

    #[test]
    fn rendezvous_sized_messages_pay_handshake() {
        let (m, p) = setup_machine();
        let prof = MpiImpl::OpenMpi.profile();
        let small = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 2, 1024.0);
        let large = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 2, 1e6);
        assert!(large.setup > small.setup + prof.rendezvous_handshake * 0.99);
    }

    #[test]
    fn distant_sockets_pay_more_hops() {
        let (m, _) = setup_machine();
        let prof = MpiImpl::OpenMpi.profile();
        // One rank per socket, in socket-id order, so ranks land on
        // opposite ladder corners.
        let p = Scheme::Default.resolve(&m, 8).unwrap();
        let near = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 1, 8.0);
        let far = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 7, 8.0);
        let hop = m.spec().link.hop_latency;
        assert!(far.setup >= near.setup + 2.9 * hop, "corner-to-corner is 4 hops vs 1");
    }

    #[test]
    fn sender_busy_includes_copy_time() {
        let (m, p) = setup_machine();
        let prof = MpiImpl::Mpich2.profile();
        let c = message_cost(&m, &p, &prof, LockLayer::USysV, 0, 2, 1e6);
        assert!(c.sender_busy > 1e6 / prof.copy_bw);
        assert!(!c.rendezvous, "smpi messages are buffered");
    }
}
