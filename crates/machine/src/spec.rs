//! Static machine specifications.
//!
//! A [`MachineSpec`] captures everything the simulator needs to know about
//! a machine: per-core compute capability, cache sizes, per-socket memory
//! controller parameters, the HyperTransport link graph, and the cache-
//! coherence probe model. The preset builders in [`crate::systems`]
//! instantiate the three systems of the paper's Table 1.

use crate::error::{Error, Result};

/// Compute capability of a single core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Clock frequency in Hz (2.2 GHz for Opteron 248/275, 1.8 GHz for 865).
    pub frequency_hz: f64,
    /// Peak double-precision floating-point operations per cycle.
    /// The K8 Opteron retires 2 flops/cycle (one add + one multiply).
    pub flops_per_cycle: f64,
}

impl CoreSpec {
    /// Peak double-precision throughput in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.frequency_hz * self.flops_per_cycle
    }
}

/// Per-core cache hierarchy sizes and the memory-level-parallelism limits
/// that bound a core's achievable DRAM bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSpec {
    /// L1 data cache capacity in bytes (64 KiB on K8).
    pub l1_bytes: f64,
    /// Unified L2 capacity in bytes (1 MiB on K8).
    pub l2_bytes: f64,
    /// Cache line size in bytes (64 B on K8).
    pub line_bytes: f64,
    /// Outstanding line fills a core sustains for sequential (prefetched)
    /// access. Eight MSHRs/prefetch streams is representative of K8.
    pub stream_mlp: f64,
    /// Outstanding line fills for dependent/random access (much lower: the
    /// paper's RandomAccess results are latency-bound).
    pub random_mlp: f64,
    /// Outstanding line fills for large-strided access that defeats the
    /// hardware prefetcher but is not dependent (FFT butterflies,
    /// transposes). Between the other two.
    pub strided_mlp: f64,
    /// Outstanding line fills for dependent table lookups (XSBench-style
    /// cross-section search): each lookup is a short independent chain, so
    /// a core overlaps a few of them — more than pure pointer chasing,
    /// less than prefetched streams.
    pub lookup_mlp: f64,
}

/// Per-socket memory controller parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Peak controller bandwidth in bytes/s. Dual-channel DDR-400 is
    /// 6.4 GB/s peak; sustained STREAM on a 2006 Opteron is ~4 GB/s, which
    /// the latency/MLP model yields without further derating.
    pub controller_bw: f64,
    /// Idle (uncontended, local, no-probe) DRAM access latency in seconds.
    pub idle_latency: f64,
    /// Extra latency a dependent table lookup pays on top of the routed
    /// access latency, in seconds: random addresses miss the open DRAM row
    /// almost every time and walk the TLB for a huge table, where the
    /// streaming numbers above assume a row-hit mix. May be zero.
    pub lookup_latency: f64,
}

/// A bidirectional HyperTransport link between two sockets.
///
/// The simulator splits each entry into two directed resources so that
/// full-duplex traffic does not self-contend.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth per direction in bytes/s (~2 GB/s for the coherent
    /// HT links of these systems, after protocol overhead).
    pub bandwidth: f64,
    /// Per-hop latency contribution in seconds (~50 ns).
    pub hop_latency: f64,
}

/// Cache-coherence probe cost model.
///
/// K8 Opterons broadcast probes on every memory access. The probe response
/// time is bounded by the farthest socket, so the *effective* memory
/// latency grows with the topology diameter. This is the mechanism behind
/// the paper's Longs observations: "the best achievable single core
/// bandwidth on the 8 socket system is less than half of the more than
/// 4 GBytes per second one would typically expect from an Opteron".
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceSpec {
    /// Fixed probe cost on any multi-socket machine, seconds.
    pub base_probe: f64,
    /// Additional probe cost per hop of topology diameter, seconds.
    pub per_hop_probe: f64,
    /// Machine-wide DRAM traffic the broadcast-probe fabric can sustain,
    /// bytes/s. Every memory access probes every socket, so aggregate
    /// DRAM bandwidth is capped by how fast the slowest point of the
    /// fabric can service probes. On two-socket systems this never binds;
    /// on the eight-socket ladder it is what makes the paper's Star
    /// STREAM *lose* per-socket bandwidth when second cores come online.
    pub probe_capacity: f64,
}

impl CoherenceSpec {
    /// Probe latency added to every DRAM access on a machine with the
    /// given socket count and topology diameter. Single-socket machines
    /// pay nothing.
    pub fn probe_latency(&self, sockets: usize, diameter: usize) -> f64 {
        if sockets <= 1 {
            0.0
        } else {
            self.base_probe + self.per_hop_probe * diameter as f64
        }
    }
}

/// An edge in the socket link graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEdge {
    /// One endpoint (socket index).
    pub a: usize,
    /// The other endpoint (socket index).
    pub b: usize,
}

impl LinkEdge {
    /// Creates an edge between sockets `a` and `b`.
    pub const fn new(a: usize, b: usize) -> Self {
        Self { a, b }
    }
}

/// Complete static description of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable machine name ("tiger", "dmz", "longs", ...).
    pub name: String,
    /// One entry per socket; the value is the socket's memory node size in
    /// bytes (4 GiB per socket on Longs, for example). The length of this
    /// vector defines the socket count.
    pub sockets: Vec<f64>,
    /// Cores per socket (1 on Tiger, 2 on DMZ/Longs).
    pub cores_per_socket: usize,
    /// Per-core compute capability.
    pub core: CoreSpec,
    /// Per-core cache hierarchy.
    pub cache: CacheSpec,
    /// Per-socket memory controller.
    pub memory: MemorySpec,
    /// HyperTransport link parameters (uniform across links on these
    /// systems).
    pub link: LinkSpec,
    /// Edges of the socket link graph.
    pub edges: Vec<LinkEdge>,
    /// Coherence probe model.
    pub coherence: CoherenceSpec,
    /// Per-node memory controller overrides for heterogeneous memory
    /// tiers: `(node index, spec)` pairs. Nodes without an entry use
    /// `memory`. Empty on the uniform 2006 machines.
    pub node_memory: Vec<(usize, MemorySpec)>,
    /// Per-edge link overrides for non-uniform interconnects: `(index
    /// into edges, spec)` pairs. Edges without an entry use `link`.
    /// Empty on the uniform 2006 machines.
    pub edge_links: Vec<(usize, LinkSpec)>,
    /// Number of trailing sockets that carry a memory node but no cores
    /// (HBM expansion nodes, CXL-style capacity nodes). The first
    /// `sockets.len() - memory_only_nodes` sockets are compute sockets.
    pub memory_only_nodes: usize,
}

fn positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

impl MachineSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for empty machines, non-positive
    /// capacities, or edges that reference sockets outside the machine.
    pub fn validate(&self) -> Result<()> {
        if self.sockets.is_empty() {
            return Err(Error::InvalidSpec("machine has no sockets".into()));
        }
        if self.cores_per_socket == 0 {
            return Err(Error::InvalidSpec("cores_per_socket is zero".into()));
        }
        if !positive(self.core.frequency_hz) || !positive(self.core.flops_per_cycle) {
            return Err(Error::InvalidSpec("core spec must be positive".into()));
        }
        if !positive(self.memory.controller_bw) || !positive(self.memory.idle_latency) {
            return Err(Error::InvalidSpec("memory spec must be positive".into()));
        }
        if !(self.memory.lookup_latency.is_finite() && self.memory.lookup_latency >= 0.0) {
            return Err(Error::InvalidSpec("lookup latency must be finite and >= 0".into()));
        }
        if !positive(self.cache.line_bytes)
            || !positive(self.cache.stream_mlp)
            || !positive(self.cache.random_mlp)
            || !positive(self.cache.strided_mlp)
            || !positive(self.cache.lookup_mlp)
            || !positive(self.cache.l1_bytes)
            || self.cache.l2_bytes < self.cache.l1_bytes
            || self.cache.l2_bytes.is_nan()
        {
            return Err(Error::InvalidSpec("cache spec must be positive with l2 >= l1".into()));
        }
        if !positive(self.coherence.probe_capacity) {
            return Err(Error::InvalidSpec("probe capacity must be positive".into()));
        }
        if self.sockets.len() > 1 {
            if !positive(self.link.bandwidth)
                || self.link.hop_latency < 0.0
                || self.link.hop_latency.is_nan()
            {
                return Err(Error::InvalidSpec("link spec must be positive".into()));
            }
            if self.edges.is_empty() {
                return Err(Error::InvalidSpec("multi-socket machine has no links".into()));
            }
        }
        for e in &self.edges {
            if e.a >= self.sockets.len() || e.b >= self.sockets.len() {
                return Err(Error::InvalidSpec(format!(
                    "edge {}-{} references a socket outside the machine",
                    e.a, e.b
                )));
            }
            if e.a == e.b {
                return Err(Error::InvalidSpec(format!("self-loop edge on socket {}", e.a)));
            }
        }
        if self.memory_only_nodes >= self.sockets.len() {
            return Err(Error::InvalidSpec(format!(
                "{} memory-only nodes leave no compute socket on a {}-socket machine",
                self.memory_only_nodes,
                self.sockets.len()
            )));
        }
        for (i, (node, mem)) in self.node_memory.iter().enumerate() {
            if *node >= self.sockets.len() {
                return Err(Error::InvalidSpec(format!(
                    "memory override references node {node} outside the machine"
                )));
            }
            if self.node_memory[..i].iter().any(|(n, _)| n == node) {
                return Err(Error::InvalidSpec(format!(
                    "duplicate memory override for node {node}"
                )));
            }
            let lookup_ok = mem.lookup_latency.is_finite() && mem.lookup_latency >= 0.0;
            if !positive(mem.controller_bw) || !positive(mem.idle_latency) || !lookup_ok {
                return Err(Error::InvalidSpec(format!(
                    "memory override for node {node} must be positive"
                )));
            }
        }
        for (i, (edge, link)) in self.edge_links.iter().enumerate() {
            if *edge >= self.edges.len() {
                return Err(Error::InvalidSpec(format!(
                    "link override references edge {edge} outside the machine"
                )));
            }
            if self.edge_links[..i].iter().any(|(e, _)| e == edge) {
                return Err(Error::InvalidSpec(format!("duplicate link override for edge {edge}")));
            }
            if !positive(link.bandwidth) || link.hop_latency < 0.0 || link.hop_latency.is_nan() {
                return Err(Error::InvalidSpec(format!(
                    "link override for edge {edge} must be positive"
                )));
            }
        }
        Ok(())
    }

    /// Peak double-precision flop/s of the whole machine (cores live
    /// only on compute sockets).
    pub fn peak_flops(&self) -> f64 {
        self.core.peak_flops() * (self.num_compute_sockets() * self.cores_per_socket) as f64
    }

    /// Number of sockets that carry cores.
    pub fn num_compute_sockets(&self) -> usize {
        self.sockets.len().saturating_sub(self.memory_only_nodes)
    }

    /// Effective memory controller spec for a node, honouring overrides.
    pub fn memory_of(&self, node: usize) -> &MemorySpec {
        self.node_memory.iter().find(|(n, _)| *n == node).map_or(&self.memory, |(_, m)| m)
    }

    /// Effective link spec for an edge (index into `edges`), honouring
    /// overrides.
    pub fn link_of(&self, edge: usize) -> &LinkSpec {
        self.edge_links.iter().find(|(e, _)| *e == edge).map_or(&self.link, |(_, l)| l)
    }

    /// True when the machine has no heterogeneity: every node shares
    /// `memory`, every edge shares `link`, and every socket has cores.
    /// Uniform machines take the exact pre-topo latency formula, which
    /// keeps the 2006 presets byte-identical.
    pub fn is_uniform(&self) -> bool {
        self.memory_only_nodes == 0 && self.node_memory.is_empty() && self.edge_links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn presets_validate() {
        for spec in [systems::tiger(), systems::dmz(), systems::longs()] {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn rejects_empty_machine() {
        let mut spec = systems::dmz();
        spec.sockets.clear();
        assert!(matches!(spec.validate(), Err(Error::InvalidSpec(_))));
    }

    #[test]
    fn rejects_bad_edge() {
        let mut spec = systems::dmz();
        spec.edges.push(LinkEdge::new(0, 9));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rejects_self_loop() {
        let mut spec = systems::dmz();
        spec.edges.push(LinkEdge::new(1, 1));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn peak_flops_matches_paper() {
        // Tiger node: two 2.2 GHz single-core Opterons, "each capable of
        // 4.4 GFlop/s".
        let tiger = systems::tiger();
        assert!((tiger.core.peak_flops() - 4.4e9).abs() < 1e6);
        assert!((tiger.peak_flops() - 8.8e9).abs() < 1e6);
    }

    #[test]
    fn single_socket_needs_no_links() {
        let mut spec = systems::dmz();
        spec.sockets.truncate(1);
        spec.edges.clear();
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn coherence_free_on_single_socket() {
        let c = CoherenceSpec { base_probe: 1e-8, per_hop_probe: 1e-8, probe_capacity: 1e12 };
        assert_eq!(c.probe_latency(1, 0), 0.0);
        assert!(c.probe_latency(8, 4) > c.probe_latency(2, 1));
    }

    #[test]
    fn rejects_bad_lookup_fields() {
        let mut spec = systems::dmz();
        spec.cache.lookup_mlp = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = systems::dmz();
        spec.memory.lookup_latency = -1e-9;
        assert!(spec.validate().is_err());
        let mut spec = systems::dmz();
        spec.memory.lookup_latency = 0.0; // zero extra cost is legal
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn rejects_zero_probe_capacity() {
        let mut spec = systems::longs();
        spec.coherence.probe_capacity = 0.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn presets_are_uniform() {
        for spec in [systems::tiger(), systems::dmz(), systems::longs()] {
            assert!(spec.is_uniform(), "{} should be uniform", spec.name);
            assert_eq!(spec.num_compute_sockets(), spec.sockets.len());
        }
    }

    #[test]
    fn rejects_all_memory_only() {
        let mut spec = systems::dmz();
        spec.memory_only_nodes = 2;
        assert!(spec.validate().is_err());
        spec.memory_only_nodes = 1;
        assert!(spec.validate().is_ok());
        assert_eq!(spec.num_compute_sockets(), 1);
    }

    #[test]
    fn rejects_bad_memory_override() {
        let mem = |bw| MemorySpec { controller_bw: bw, idle_latency: 1e-7, lookup_latency: 0.0 };
        let mut spec = systems::dmz();
        spec.node_memory = vec![(9, mem(1e9))];
        assert!(spec.validate().is_err());
        spec.node_memory = vec![(1, mem(0.0))];
        assert!(spec.validate().is_err());
        spec.node_memory = vec![(1, mem(1e9)), (1, mem(2e9))];
        assert!(spec.validate().is_err());
        spec.node_memory = vec![(1, mem(1e9))];
        assert!(spec.validate().is_ok());
        assert!(!spec.is_uniform());
        assert_eq!(spec.memory_of(1).controller_bw, 1e9);
        assert_eq!(spec.memory_of(0).controller_bw, spec.memory.controller_bw);
    }

    #[test]
    fn rejects_bad_link_override() {
        let link = |bw| LinkSpec { bandwidth: bw, hop_latency: 1e-8 };
        let mut spec = systems::dmz();
        spec.edge_links = vec![(5, link(1e9))];
        assert!(spec.validate().is_err());
        spec.edge_links = vec![(0, link(0.0))];
        assert!(spec.validate().is_err());
        spec.edge_links = vec![(0, link(1e9)), (0, link(2e9))];
        assert!(spec.validate().is_err());
        spec.edge_links = vec![(0, link(1e9))];
        assert!(spec.validate().is_ok());
        assert_eq!(spec.link_of(0).bandwidth, 1e9);
    }
}
