//! Time-resolved run traces: solver intervals, per-rank op spans, and
//! fault stamps.
//!
//! The engine's [`crate::metrics::RunMetrics`] are end-of-run totals; a
//! [`RunTrace`] is the time axis underneath them. Between any two engine
//! events the fluid-flow solver holds every rate constant, so a run is
//! exactly a sequence of [`SolverInterval`]s — each carrying per-resource
//! utilization and per-rank status — plus one [`OpSpan`] per program op
//! actually dispatched, carrying how the span's wall time splits across
//! the bottlenecks ([`Bottleneck`]) that limited its flows.
//!
//! Tracing is opt-in via [`TraceConfig`] and adds nothing to the engine
//! hot loop when off: the engine keeps its trace state as
//! `Option<Box<..>>`, `None` when disabled, and rate solving goes through
//! the same progressive-filling arithmetic either way.

use crate::flow::Bottleneck;
use crate::ids::RankId;
use crate::metrics::{RankSpans, ResourceTimeline};
use crate::FaultKind;

/// Utilization at or above this fraction counts as "saturated" in
/// [`ResourceTimeline::saturated_time`]. Just under 1.0 so accumulated
/// f64 slack in the solver cannot hide a genuinely pinned resource.
pub const SATURATION_THRESHOLD: f64 = 0.999;

/// Whether the engine records a [`RunTrace`] for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    enabled: bool,
}

impl TraceConfig {
    /// Tracing disabled: the engine allocates no trace state and the run
    /// is bit-identical to an untraced one.
    #[must_use]
    pub const fn off() -> Self {
        Self { enabled: false }
    }

    /// Tracing enabled: the engine records intervals, spans, and fault
    /// stamps. Rates are still bit-identical to an untraced run —
    /// attribution is observed, never fed back.
    #[must_use]
    pub const fn on() -> Self {
        Self { enabled: true }
    }

    /// True when tracing is enabled.
    #[must_use]
    pub const fn is_on(&self) -> bool {
        self.enabled
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// A rank's scheduler status during one solver interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// Ready to dispatch its next op.
    Ready,
    /// Inside a compute phase.
    Computing,
    /// Inside a fixed delay.
    Waiting,
    /// Blocked in a rendezvous send.
    SendBlocked,
    /// Blocked waiting for a message to arrive or drain.
    RecvBlocked,
    /// Arrived at a barrier, waiting for the others.
    BarrierBlocked,
    /// Program finished.
    Done,
}

impl RankState {
    /// Short lower-case label, stable for CSV/trace output.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            RankState::Ready => "ready",
            RankState::Computing => "computing",
            RankState::Waiting => "waiting",
            RankState::SendBlocked => "send-blocked",
            RankState::RecvBlocked => "recv-blocked",
            RankState::BarrierBlocked => "barrier-blocked",
            RankState::Done => "done",
        }
    }
}

/// The kind of program op a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A compute phase (with its memory traffic).
    Compute,
    /// A send op, including rendezvous blocking and drain time.
    Send,
    /// A recv op, including waiting for the sender.
    Recv,
    /// An engine barrier.
    Barrier,
    /// A fixed software delay (MPI overhead, lock cost).
    Delay,
}

impl SpanKind {
    /// Short lower-case label, stable for CSV/trace output.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::Barrier => "barrier",
            SpanKind::Delay => "delay",
        }
    }
}

/// One piecewise-constant stretch of the run: every flow rate is fixed
/// over `[t0, t1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverInterval {
    /// Interval start (seconds).
    pub t0: f64,
    /// Interval end (seconds).
    pub t1: f64,
    /// Per-resource utilization in `[0, 1]`, indexed like the engine's
    /// resource table. A zero-capacity resource reads 1.0 while any live
    /// flow still routes through it (it is pinning that flow at rate 0).
    pub utilization: Vec<f64>,
    /// Per-rank status over the interval.
    pub rank_state: Vec<RankState>,
}

impl SolverInterval {
    /// Interval length in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// One dispatched program op on one rank, with its wall time split by
/// bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// Rank the op ran on.
    pub rank: usize,
    /// Kind of op.
    pub kind: SpanKind,
    /// Label: the compute phase's label, or the op kind's name.
    pub label: &'static str,
    /// Span start (seconds).
    pub t0: f64,
    /// Span end (seconds).
    pub t1: f64,
    /// Seconds of the span attributed to each bottleneck that limited a
    /// flow owned by this op. A transfer charges both endpoints' spans,
    /// so attributed time can legitimately exceed flow-drain time summed
    /// across ranks — within one span it never exceeds the duration.
    pub attributed: Vec<(Bottleneck, f64)>,
}

impl OpSpan {
    /// Span length in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Total seconds attributed to any bottleneck.
    #[must_use]
    pub fn attributed_total(&self) -> f64 {
        self.attributed.iter().map(|&(_, s)| s).sum()
    }

    /// Span time with no flow in flight: software overhead (setup, lock
    /// delays) for communication spans, pure CPU time for compute spans.
    #[must_use]
    pub fn unattributed(&self) -> f64 {
        (self.duration() - self.attributed_total()).max(0.0)
    }

    /// The bottleneck carrying the most attributed time, if any time was
    /// attributed at all.
    #[must_use]
    pub fn dominant_bottleneck(&self) -> Option<Bottleneck> {
        self.attributed.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(b, _)| b)
    }
}

/// A scheduled fault event as it actually fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultStamp {
    /// The time the plan asked for.
    pub scheduled: f64,
    /// The engine time at which the fault was applied (`>= scheduled`;
    /// the engine fires faults at event boundaries).
    pub fired: f64,
    /// The fault that fired.
    pub kind: FaultKind,
}

/// One rollback-and-replay recovery as it happened (see
/// [`crate::recovery::CheckpointPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryStamp {
    /// The rank whose [`FaultKind::RankKill`] triggered the recovery.
    pub rank: RankId,
    /// Engine time when the kill fired.
    pub killed_at: f64,
    /// The checkpoint the run rolled back to (time of the last completed
    /// coordinated checkpoint; `0.0` for the implicit initial state).
    pub restored_to: f64,
    /// Engine time when replay resumed (`killed_at` plus the policy's
    /// restart delay).
    pub resumed_at: f64,
}

impl RecoveryStamp {
    /// Simulated work lost to the rollback: progress between the restored
    /// checkpoint and the kill, which replay must redo.
    #[must_use]
    pub fn lost_work(&self) -> f64 {
        self.killed_at - self.restored_to
    }
}

/// One bucket of a [`RunTrace::bottleneck_ranking`]: seconds of op-span
/// time attributed to one cause.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedTime {
    /// Human-readable cause: a resource name, `"flow-cap"`, `"cpu"`,
    /// `"mpi-overhead"`, or `"barrier-wait"`.
    pub label: String,
    /// Seconds attributed across all spans.
    pub seconds: f64,
}

/// The full time-resolved record of one engine run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// Resource names, indexed like the engine's resource table.
    pub resource_names: Vec<String>,
    /// Number of ranks in the run.
    pub num_ranks: usize,
    /// Piecewise-constant solver intervals in time order, covering the
    /// run without gaps.
    pub intervals: Vec<SolverInterval>,
    /// Dispatched op spans, closed in completion order.
    pub spans: Vec<OpSpan>,
    /// Fault events that fired, in firing order.
    pub faults: Vec<FaultStamp>,
    /// Rollback-and-replay recoveries, in the order they happened.
    pub recoveries: Vec<RecoveryStamp>,
    /// Engine time when the run ended (successfully or not).
    pub end_time: f64,
}

impl RunTrace {
    /// Human-readable label for a bottleneck: the resource's table name,
    /// or `"flow-cap"`.
    #[must_use]
    pub fn bottleneck_label(&self, b: Bottleneck) -> &str {
        match b {
            Bottleneck::FlowCap => "flow-cap",
            Bottleneck::Resource(r) => {
                self.resource_names.get(r).map_or("resource?", String::as_str)
            }
        }
    }

    /// Per-resource busy/saturation summaries over the whole run.
    #[must_use]
    pub fn resource_timelines(&self) -> Vec<ResourceTimeline> {
        let total: f64 = self.intervals.iter().map(SolverInterval::duration).sum();
        let n = self.resource_names.len();
        let mut busy = vec![0.0; n];
        let mut saturated = vec![0.0; n];
        let mut area = vec![0.0; n];
        for iv in &self.intervals {
            let dt = iv.duration();
            for (r, &u) in iv.utilization.iter().enumerate() {
                if u > 0.0 {
                    busy[r] += dt;
                }
                if u >= SATURATION_THRESHOLD {
                    saturated[r] += dt;
                }
                area[r] += u * dt;
            }
        }
        (0..n)
            .map(|r| ResourceTimeline {
                name: self.resource_names[r].clone(),
                total_time: total,
                busy_time: busy[r],
                saturated_time: saturated[r],
                mean_utilization: if total > 0.0 { area[r] / total } else { 0.0 },
            })
            .collect()
    }

    /// Per-rank time-in-op summaries over the whole run.
    #[must_use]
    pub fn rank_spans(&self) -> Vec<RankSpans> {
        let mut out: Vec<RankSpans> = (0..self.num_ranks).map(RankSpans::new).collect();
        for span in &self.spans {
            let Some(r) = out.get_mut(span.rank) else { continue };
            let dt = span.duration();
            match span.kind {
                SpanKind::Compute => r.compute += dt,
                SpanKind::Send => r.send += dt,
                SpanKind::Recv => r.recv += dt,
                SpanKind::Barrier => r.barrier += dt,
                SpanKind::Delay => r.delay += dt,
            }
            r.spans += 1;
        }
        out
    }

    /// Ranks every cause of elapsed op time, most costly first.
    ///
    /// Attributed span time is bucketed by bottleneck label (resource
    /// name or `"flow-cap"`); unattributed span time — no flow in flight
    /// — is bucketed `"cpu"` for compute spans, `"mpi-overhead"` for
    /// send/recv/delay spans, and `"barrier-wait"` for barrier spans.
    /// Buckets with no time are dropped.
    #[must_use]
    pub fn bottleneck_ranking(&self) -> Vec<AttributedTime> {
        // label -> seconds; small cardinality, linear scan is fine and
        // keeps ordering deterministic without a hash map.
        let mut buckets: Vec<(String, f64)> = Vec::new();
        let add = |label: &str, seconds: f64, buckets: &mut Vec<(String, f64)>| {
            if seconds <= 0.0 {
                return;
            }
            if let Some(slot) = buckets.iter_mut().find(|(l, _)| l == label) {
                slot.1 += seconds;
            } else {
                buckets.push((label.to_string(), seconds));
            }
        };
        for span in &self.spans {
            for &(b, seconds) in &span.attributed {
                let label = match b {
                    Bottleneck::FlowCap => "flow-cap",
                    Bottleneck::Resource(r) => {
                        self.resource_names.get(r).map_or("resource?", String::as_str)
                    }
                };
                add(label, seconds, &mut buckets);
            }
            let overhead = span.unattributed();
            let label = match span.kind {
                SpanKind::Compute => "cpu",
                SpanKind::Send | SpanKind::Recv | SpanKind::Delay => "mpi-overhead",
                SpanKind::Barrier => "barrier-wait",
            };
            add(label, overhead, &mut buckets);
        }
        buckets.sort_by(|a, b| b.1.total_cmp(&a.1));
        buckets.into_iter().map(|(label, seconds)| AttributedTime { label, seconds }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_config_defaults_off() {
        assert!(!TraceConfig::default().is_on());
        assert!(TraceConfig::on().is_on());
        assert!(!TraceConfig::off().is_on());
    }

    fn span(kind: SpanKind, t0: f64, t1: f64, attributed: Vec<(Bottleneck, f64)>) -> OpSpan {
        OpSpan { rank: 0, kind, label: kind.name(), t0, t1, attributed }
    }

    #[test]
    fn ranking_buckets_attributed_and_overhead_time() {
        let trace = RunTrace {
            resource_names: vec!["mc:0".into(), "coherence-probe".into()],
            num_ranks: 1,
            intervals: vec![],
            spans: vec![
                span(SpanKind::Compute, 0.0, 1.0, vec![(Bottleneck::Resource(1), 0.9)]),
                span(SpanKind::Send, 1.0, 1.5, vec![(Bottleneck::Resource(0), 0.2)]),
                span(SpanKind::Barrier, 1.5, 1.6, vec![]),
            ],
            faults: vec![],
            recoveries: vec![],
            end_time: 1.6,
        };
        let ranking = trace.bottleneck_ranking();
        let get = |label: &str| {
            ranking.iter().find(|a| a.label == label).map(|a| a.seconds).unwrap_or(0.0)
        };
        assert!((get("coherence-probe") - 0.9).abs() < 1e-12);
        assert!((get("mc:0") - 0.2).abs() < 1e-12);
        // 0.1 s of compute span with no flow in flight -> cpu; 0.3 s of
        // the send span -> mpi-overhead; the barrier span -> barrier-wait.
        assert!((get("cpu") - 0.1).abs() < 1e-12);
        assert!((get("mpi-overhead") - 0.3).abs() < 1e-12);
        assert!((get("barrier-wait") - 0.1).abs() < 1e-12);
        // Sorted descending.
        assert_eq!(ranking[0].label, "coherence-probe");
    }

    #[test]
    fn resource_timelines_summarize_utilization() {
        let trace = RunTrace {
            resource_names: vec!["mc:0".into()],
            num_ranks: 1,
            intervals: vec![
                SolverInterval {
                    t0: 0.0,
                    t1: 1.0,
                    utilization: vec![1.0],
                    rank_state: vec![RankState::Computing],
                },
                SolverInterval {
                    t0: 1.0,
                    t1: 2.0,
                    utilization: vec![0.5],
                    rank_state: vec![RankState::Computing],
                },
                SolverInterval {
                    t0: 2.0,
                    t1: 3.0,
                    utilization: vec![0.0],
                    rank_state: vec![RankState::Done],
                },
            ],
            spans: vec![],
            faults: vec![],
            recoveries: vec![],
            end_time: 3.0,
        };
        let tl = &trace.resource_timelines()[0];
        assert!((tl.total_time - 3.0).abs() < 1e-12);
        assert!((tl.busy_time - 2.0).abs() < 1e-12);
        assert!((tl.saturated_time - 1.0).abs() < 1e-12);
        assert!((tl.mean_utilization - 0.5).abs() < 1e-12);
        assert!((tl.busy_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((tl.saturation_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_spans_accumulate_by_kind() {
        let mut s = span(SpanKind::Compute, 0.0, 2.0, vec![]);
        s.rank = 0;
        let trace = RunTrace {
            resource_names: vec![],
            num_ranks: 2,
            intervals: vec![],
            spans: vec![
                s,
                OpSpan {
                    rank: 1,
                    kind: SpanKind::Recv,
                    label: "recv",
                    t0: 0.0,
                    t1: 0.5,
                    attributed: vec![],
                },
            ],
            faults: vec![],
            recoveries: vec![],
            end_time: 2.0,
        };
        let per_rank = trace.rank_spans();
        assert_eq!(per_rank.len(), 2);
        assert!((per_rank[0].compute - 2.0).abs() < 1e-12);
        assert!((per_rank[0].total() - 2.0).abs() < 1e-12);
        assert!((per_rank[1].recv - 0.5).abs() < 1e-12);
        assert_eq!(per_rank[0].spans, 1);
    }

    #[test]
    fn recovery_stamp_reports_lost_work() {
        let stamp = RecoveryStamp {
            rank: RankId::new(2),
            killed_at: 1.5,
            restored_to: 1.0,
            resumed_at: 1.6,
        };
        assert!((stamp.lost_work() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dominant_bottleneck_picks_largest_share() {
        let s = span(
            SpanKind::Compute,
            0.0,
            1.0,
            vec![(Bottleneck::FlowCap, 0.2), (Bottleneck::Resource(3), 0.7)],
        );
        assert_eq!(s.dominant_bottleneck(), Some(Bottleneck::Resource(3)));
        assert!((s.unattributed() - 0.1).abs() < 1e-12);
        let empty = span(SpanKind::Barrier, 0.0, 1.0, vec![]);
        assert_eq!(empty.dominant_bottleneck(), None);
    }
}
