//! Simulation metrics collected by the engine.

use crate::ids::RankId;

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Pure compute time per rank (seconds of cpu-bound work, before
    /// memory stretching).
    pub compute_time: Vec<f64>,
    /// DRAM bytes actually moved per rank.
    pub dram_bytes: Vec<f64>,
    /// Messages sent per rank.
    pub messages_sent: Vec<usize>,
    /// Payload bytes sent per rank.
    pub bytes_sent: Vec<f64>,
    /// Total bytes that crossed each shared resource (indexed like the
    /// engine's resource table: memory controllers first, then directed
    /// links).
    pub resource_bytes: Vec<f64>,
    /// Number of discrete events processed.
    pub events: usize,
    /// Number of scheduled fault events that fired during the run.
    pub faults_applied: usize,
    /// Coordinated checkpoints completed (see
    /// [`crate::recovery::CheckpointPolicy`]).
    pub checkpoints_taken: usize,
    /// Rollback-and-replay recoveries performed after
    /// [`crate::faults::FaultKind::RankKill`] events.
    pub recoveries: usize,
    /// Transfer retransmissions triggered by failed links (see
    /// [`crate::recovery::RetryPolicy`]).
    pub retries: usize,
}

impl RunMetrics {
    /// Creates zeroed metrics for `ranks` ranks and `resources` resources.
    pub fn new(ranks: usize, resources: usize) -> Self {
        Self {
            compute_time: vec![0.0; ranks],
            dram_bytes: vec![0.0; ranks],
            messages_sent: vec![0; ranks],
            bytes_sent: vec![0.0; ranks],
            resource_bytes: vec![0.0; resources],
            events: 0,
            faults_applied: 0,
            checkpoints_taken: 0,
            recoveries: 0,
            retries: 0,
        }
    }

    /// Total DRAM bytes across all ranks.
    pub fn total_dram_bytes(&self) -> f64 {
        self.dram_bytes.iter().sum()
    }

    /// Total messages across all ranks.
    pub fn total_messages(&self) -> usize {
        self.messages_sent.iter().sum()
    }

    /// Total payload bytes across all ranks.
    pub fn total_bytes_sent(&self) -> f64 {
        self.bytes_sent.iter().sum()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Time at which the last rank finished (the figure-of-merit for the
    /// paper's runtime tables).
    pub makespan: f64,
    /// Per-rank completion times.
    pub rank_finish: Vec<f64>,
    /// Accumulated counters.
    pub metrics: RunMetrics,
}

impl RunReport {
    /// Finish time of a specific rank.
    pub fn finish_of(&self, rank: RankId) -> f64 {
        self.rank_finish[rank.index()]
    }

    /// Aggregate achieved DRAM bandwidth over the run (bytes/s).
    pub fn mean_dram_bandwidth(&self) -> f64 {
        if self.makespan > 0.0 {
            self.metrics.total_dram_bytes() / self.makespan
        } else {
            0.0
        }
    }
}

/// Busy/saturation summary of one shared resource over a traced run
/// (built by [`crate::trace::RunTrace::resource_timelines`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTimeline {
    /// Resource name from the engine's table (`mc:0`, `link:0->1`,
    /// `coherence-probe`).
    pub name: String,
    /// Total traced run time in seconds.
    pub total_time: f64,
    /// Seconds with any flow drawing on the resource.
    pub busy_time: f64,
    /// Seconds at or above [`crate::trace::SATURATION_THRESHOLD`]
    /// utilization.
    pub saturated_time: f64,
    /// Time-weighted mean utilization in `[0, 1]`.
    pub mean_utilization: f64,
}

impl ResourceTimeline {
    /// Fraction of the run with the resource busy.
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        if self.total_time > 0.0 {
            self.busy_time / self.total_time
        } else {
            0.0
        }
    }

    /// Fraction of the run with the resource saturated.
    #[must_use]
    pub fn saturation_fraction(&self) -> f64 {
        if self.total_time > 0.0 {
            self.saturated_time / self.total_time
        } else {
            0.0
        }
    }
}

/// Per-rank time-in-op summary over a traced run (built by
/// [`crate::trace::RunTrace::rank_spans`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RankSpans {
    /// The rank.
    pub rank: usize,
    /// Seconds inside compute spans.
    pub compute: f64,
    /// Seconds inside send spans (including rendezvous blocking).
    pub send: f64,
    /// Seconds inside recv spans (including waiting for the sender).
    pub recv: f64,
    /// Seconds inside barrier spans.
    pub barrier: f64,
    /// Seconds inside fixed delays (MPI software overhead, lock costs).
    pub delay: f64,
    /// Number of spans recorded for this rank.
    pub spans: usize,
}

impl RankSpans {
    /// Zeroed summary for `rank`.
    #[must_use]
    pub fn new(rank: usize) -> Self {
        Self { rank, compute: 0.0, send: 0.0, recv: 0.0, barrier: 0.0, delay: 0.0, spans: 0 }
    }

    /// Total seconds across all span kinds.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute + self.send + self.recv + self.barrier + self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_per_rank_values() {
        let mut m = RunMetrics::new(3, 2);
        m.dram_bytes = vec![1.0, 2.0, 3.0];
        m.messages_sent = vec![4, 0, 1];
        m.bytes_sent = vec![10.0, 0.0, 5.0];
        assert_eq!(m.total_dram_bytes(), 6.0);
        assert_eq!(m.total_messages(), 5);
        assert_eq!(m.total_bytes_sent(), 15.0);
    }

    #[test]
    fn timeline_fractions_handle_zero_total_time() {
        let tl = ResourceTimeline {
            name: "mc:0".into(),
            total_time: 0.0,
            busy_time: 0.0,
            saturated_time: 0.0,
            mean_utilization: 0.0,
        };
        assert_eq!(tl.busy_fraction(), 0.0);
        assert_eq!(tl.saturation_fraction(), 0.0);
        assert_eq!(RankSpans::new(2).total(), 0.0);
    }

    #[test]
    fn report_bandwidth_handles_zero_makespan() {
        let r = RunReport { makespan: 0.0, rank_finish: vec![0.0], metrics: RunMetrics::new(1, 1) };
        assert_eq!(r.mean_dram_bandwidth(), 0.0);
    }
}
