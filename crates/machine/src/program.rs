//! Per-rank simulated programs.
//!
//! A [`Program`] is the list of operations one rank executes: compute
//! phases (with flop counts and memory-traffic profiles), point-to-point
//! messages with explicit cost parameters (filled in by the MPI layer),
//! barriers, and fixed delays. Workload models in the kernel/application
//! crates build programs; the [`Engine`](crate::engine::Engine) executes
//! them.

use crate::ids::RankId;
use crate::memory::MemoryLayout;
use crate::traffic::TrafficProfile;

/// One compute phase on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputePhase {
    /// Label for tracing/metrics ("triad", "dgemm", "fft-butterfly", ...).
    pub label: &'static str,
    /// Double-precision floating-point operations executed.
    pub flops: f64,
    /// Fraction of core peak flop/s the phase sustains when its data is
    /// cache-resident (ACML DGEMM ≈ 0.88, compiled Fortran ≈ 0.13,
    /// bandwidth-bound loops ≈ anything — they are memory-limited anyway).
    pub efficiency: f64,
    /// Memory traffic the phase generates.
    pub traffic: TrafficProfile,
    /// Page distribution of the data this phase touches. `None` (the
    /// default) uses the rank's own placement layout; workloads whose hot
    /// structure lives elsewhere (a shared lookup table spilled across
    /// nodes) override it per phase.
    pub layout: Option<MemoryLayout>,
}

impl ComputePhase {
    /// Creates a phase; efficiency defaults to 1.0 via [`Self::with_efficiency`].
    pub fn new(label: &'static str, flops: f64, traffic: TrafficProfile) -> Self {
        Self { label, flops, efficiency: 1.0, traffic, layout: None }
    }

    /// Sets the sustained-fraction-of-peak efficiency.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        self.efficiency = efficiency.clamp(1e-6, 1.0);
        self
    }

    /// Pins the phase's data to an explicit page distribution instead of
    /// the rank's placement layout.
    pub fn with_layout(mut self, layout: MemoryLayout) -> Self {
        self.layout = Some(layout);
        self
    }
}

/// Resolved cost parameters of a message, provided by the MPI layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageCost {
    /// Fixed pre-transfer cost in seconds (software overhead + lock
    /// acquisition + per-hop wire latency).
    pub setup: f64,
    /// Maximum transfer rate in bytes/s (e.g. the shared-memory copy
    /// bandwidth); link contention may lower the achieved rate.
    pub cap: f64,
    /// Time the *sender* is occupied before it can continue, for eager
    /// (buffered) sends. Ignored for rendezvous sends.
    pub sender_busy: f64,
    /// Rendezvous protocol: the sender blocks until delivery completes.
    /// Eager protocol (`false`): the sender continues after `sender_busy`.
    pub rendezvous: bool,
}

impl MessageCost {
    /// A free message (useful in tests): zero setup and an effectively
    /// unlimited (1 TB/s) rate cap.
    pub fn free() -> Self {
        Self { setup: 0.0, cap: 1e12, sender_busy: 0.0, rendezvous: false }
    }
}

/// One operation in a rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Execute a compute phase (roofline: duration is the max of the cpu
    /// time and the time to drain the phase's DRAM traffic).
    Compute(ComputePhase),
    /// Send `bytes` to `to` with matching `tag`.
    Send {
        /// Destination rank.
        to: RankId,
        /// Payload size in bytes.
        bytes: f64,
        /// Match tag (FIFO matching per `(src, dst, tag)`).
        tag: u64,
        /// Resolved cost parameters.
        cost: MessageCost,
    },
    /// Receive a message from `from` with matching `tag`. Blocks until the
    /// matching transfer is delivered.
    Recv {
        /// Source rank.
        from: RankId,
        /// Match tag.
        tag: u64,
    },
    /// Synchronize with every other rank in the run.
    Barrier,
    /// Sleep for a fixed number of seconds (serial sections, lock costs,
    /// I/O stand-ins).
    Delay(f64),
}

/// A rank's full operation list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a compute phase.
    pub fn compute(&mut self, phase: ComputePhase) -> &mut Self {
        self.ops.push(Op::Compute(phase));
        self
    }

    /// Appends a send.
    pub fn send(&mut self, to: RankId, bytes: f64, tag: u64, cost: MessageCost) -> &mut Self {
        self.ops.push(Op::Send { to, bytes, tag, cost });
        self
    }

    /// Appends a receive.
    pub fn recv(&mut self, from: RankId, tag: u64) -> &mut Self {
        self.ops.push(Op::Recv { from, tag });
        self
    }

    /// Appends a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Appends a fixed delay.
    pub fn delay(&mut self, seconds: f64) -> &mut Self {
        self.ops.push(Op::Delay(seconds));
        self
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total flops across all compute phases (for sanity checks).
    pub fn total_flops(&self) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(p) => p.flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Total bytes sent by this program.
    pub fn total_sent_bytes(&self) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Send { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self { ops: iter.into_iter().collect() }
    }
}

impl Extend<Op> for Program {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let mut p = Program::new();
        p.compute(ComputePhase::new("x", 100.0, TrafficProfile::none()))
            .send(RankId::new(1), 64.0, 0, MessageCost::free())
            .recv(RankId::new(1), 0)
            .barrier()
            .delay(1e-6);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.total_flops(), 100.0);
        assert_eq!(p.total_sent_bytes(), 64.0);
    }

    #[test]
    fn efficiency_is_clamped() {
        let p = ComputePhase::new("x", 1.0, TrafficProfile::none()).with_efficiency(7.0);
        assert_eq!(p.efficiency, 1.0);
        let p = ComputePhase::new("x", 1.0, TrafficProfile::none()).with_efficiency(-1.0);
        assert!(p.efficiency > 0.0);
    }

    #[test]
    fn collects_from_iterator() {
        let p: Program = vec![Op::Barrier, Op::Delay(1.0)].into_iter().collect();
        assert_eq!(p.len(), 2);
    }
}
