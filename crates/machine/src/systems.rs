//! Preset machine specifications matching Table 1 of the paper, plus the
//! calibration constants they share.
//!
//! | Name  | Opteron | GHz | Cores/socket | Sockets | Memory    |
//! |-------|---------|-----|--------------|---------|-----------|
//! | tiger | 248     | 2.2 | 1            | 2       | 8 GB node |
//! | dmz   | 275     | 2.2 | 2            | 2       | 4 GB node |
//! | longs | 865     | 1.8 | 2            | 8       | 32 GB node|

use crate::params::CalibParams;
use crate::spec::{
    CacheSpec, CoherenceSpec, CoreSpec, LinkEdge, LinkSpec, MachineSpec, MemorySpec,
};

/// Calibration constants for 2006-era AMD Opteron (K8) systems.
///
/// Sources: AMD Software Optimization Guide for AMD Athlon 64 and Opteron
/// Processors (pub. 25112, 2004) for core/cache parameters; published
/// STREAM and lmbench results for DDR-400 Opterons for the memory numbers.
pub mod calib {
    /// Double-precision flops per cycle on K8 (SSE2: 1 add + 1 mul).
    pub const FLOPS_PER_CYCLE: f64 = 2.0;
    /// L1 data cache: 64 KiB.
    pub const L1_BYTES: f64 = 64.0 * 1024.0;
    /// Unified L2: 1 MiB.
    pub const L2_BYTES: f64 = 1024.0 * 1024.0;
    /// Cache line: 64 B.
    pub const LINE_BYTES: f64 = 64.0;
    /// Outstanding line fills under hardware prefetch (streaming access).
    pub const STREAM_MLP: f64 = 8.0;
    /// Outstanding line fills for dependent random access.
    pub const RANDOM_MLP: f64 = 1.6;
    /// Outstanding line fills for prefetch-defeating strided access
    /// (FFT butterflies, transposes).
    pub const STRIDED_MLP: f64 = 2.0;
    /// Outstanding line fills for dependent table lookups (XSBench-style
    /// cross-section search). Each lookup is a short independent binary-
    /// search chain, so a K8 overlaps a few across lookups — above pure
    /// pointer chasing, far below prefetched streams.
    pub const LOOKUP_MLP: f64 = 3.0;
    /// Extra latency per dependent table lookup on top of the routed
    /// access latency: row-buffer misses (random addresses almost never
    /// hit the open DRAM row) plus TLB walks over a multi-GiB table.
    /// ~60 ns against the ~70 ns row-hit idle latency.
    pub const LOOKUP_LATENCY: f64 = 60e-9;
    /// Dual-channel DDR-400 *sustained* bandwidth per controller. The
    /// interface peak is 6.4 GB/s; real streaming on a 2006 Opteron tops
    /// out near 4.2 GB/s (bank conflicts, refresh, read/write turnaround).
    pub const DDR400_SUSTAINED_BW: f64 = 4.2e9;
    /// Idle local DRAM latency (row hit mix) on K8: ~70 ns.
    pub const DRAM_LATENCY: f64 = 70e-9;
    /// Usable coherent-HT bandwidth per direction: ~2 GB/s.
    pub const HT_BANDWIDTH: f64 = 2.0e9;
    /// Per-hop HT latency: ~55 ns.
    pub const HT_HOP_LATENCY: f64 = 55e-9;
    /// Fixed coherence probe cost on any multi-socket K8: ~25 ns.
    pub const PROBE_BASE: f64 = 25e-9;
    /// Additional probe cost per hop of topology diameter: ~45 ns.
    /// On the 8-socket ladder (diameter 4) this makes every access pay
    /// ~205 ns of probing, halving single-core streaming bandwidth —
    /// the paper's headline Longs observation.
    pub const PROBE_PER_HOP: f64 = 45e-9;
    /// Probe-fabric capacity on two-socket machines: effectively
    /// unlimited (the direct HT link services probes as fast as the
    /// controllers generate them).
    pub const PROBE_CAPACITY_SMALL: f64 = 1e12;
    /// Probe-fabric capacity on the eight-socket ladder: ~14 GB/s of
    /// aggregate DRAM traffic. Beyond this, probe responses queue — the
    /// reason "adding the second core resulted in an overall decrease
    /// ... in per socket (overall) \[STREAM\] performance" on Longs.
    pub const PROBE_CAPACITY_LADDER: f64 = 14e9;
    /// One gibibyte, for memory sizes.
    pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
}

/// Calibration constants for the post-2006 generations that
/// `corescope-topo` instantiates (chiplet packages, HBM tiers).
///
/// Sources: Bergstrom's NUMA-STREAM study (arXiv:1103.3225) for
/// multi-die on-package STREAM/latency scaling, and RZBENCH
/// (arXiv:0712.3389) for the per-generation memory-tier bandwidth
/// ladder. Only the four values that are calibration *axes* live here;
/// fixed per-generation constants (cross-package links, tier idle
/// latencies) belong to `corescope-topo::generations`.
pub mod modern {
    /// Usable on-package (die-to-die) interconnect bandwidth per
    /// direction: ~45 GB/s for an Infinity-Fabric-class link.
    pub const ONPKG_BANDWIDTH: f64 = 45e9;
    /// Per-hop latency of an on-package link: ~30 ns — the chiplet NUMA
    /// factor is far milder than 2006 HyperTransport's 55 ns.
    pub const ONPKG_LATENCY: f64 = 30e-9;
    /// Sustained DRAM bandwidth per chiplet-attached controller pair:
    /// ~32 GB/s (two DDR channels of a modern 8-channel socket).
    pub const TIER_DRAM_BANDWIDTH: f64 = 32e9;
    /// Sustained bandwidth of an on-package HBM stack presented as its
    /// own memory node: ~600 GB/s.
    pub const TIER_HBM_BANDWIDTH: f64 = 600e9;
}

fn k8_cache(p: &CalibParams) -> CacheSpec {
    CacheSpec {
        l1_bytes: p.l1_bytes,
        l2_bytes: p.l2_bytes,
        line_bytes: p.line_bytes,
        stream_mlp: p.stream_mlp,
        random_mlp: p.random_mlp,
        strided_mlp: p.strided_mlp,
        lookup_mlp: p.lookup_mlp,
    }
}

fn k8_memory(p: &CalibParams) -> MemorySpec {
    MemorySpec {
        controller_bw: p.dram_bandwidth,
        idle_latency: p.dram_latency,
        lookup_latency: p.lookup_latency,
    }
}

fn k8_link(p: &CalibParams) -> LinkSpec {
    LinkSpec { bandwidth: p.ht_bandwidth, hop_latency: p.ht_hop_latency }
}

fn k8_coherence(p: &CalibParams, probe_capacity: f64) -> CoherenceSpec {
    CoherenceSpec { base_probe: p.probe_base, per_hop_probe: p.probe_per_hop, probe_capacity }
}

/// "Tiger": a Cray XD1 node — two single-core 2.2 GHz Opteron 248, 8 GB.
///
/// ```
/// let spec = corescope_machine::systems::tiger();
/// assert_eq!(spec.sockets.len() * spec.cores_per_socket, 2);
/// ```
pub fn tiger() -> MachineSpec {
    tiger_with(&CalibParams::paper_2006())
}

/// [`tiger`] built from an arbitrary calibration point.
pub fn tiger_with(p: &CalibParams) -> MachineSpec {
    MachineSpec {
        name: "tiger".into(),
        sockets: vec![4.0 * calib::GIB; 2],
        cores_per_socket: 1,
        core: CoreSpec { frequency_hz: 2.2e9, flops_per_cycle: p.flops_per_cycle },
        cache: k8_cache(p),
        memory: k8_memory(p),
        link: k8_link(p),
        edges: vec![LinkEdge::new(0, 1)],
        coherence: k8_coherence(p, p.probe_capacity_small),
        node_memory: Vec::new(),
        edge_links: Vec::new(),
        memory_only_nodes: 0,
    }
}

/// "DMZ": one node of the DMZ cluster — two dual-core 2.2 GHz Opteron 275,
/// 4 GB shared memory.
///
/// ```
/// let spec = corescope_machine::systems::dmz();
/// assert_eq!(spec.sockets.len() * spec.cores_per_socket, 4);
/// ```
pub fn dmz() -> MachineSpec {
    dmz_with(&CalibParams::paper_2006())
}

/// [`dmz`] built from an arbitrary calibration point.
pub fn dmz_with(p: &CalibParams) -> MachineSpec {
    MachineSpec {
        name: "dmz".into(),
        sockets: vec![2.0 * calib::GIB; 2],
        cores_per_socket: 2,
        core: CoreSpec { frequency_hz: 2.2e9, flops_per_cycle: p.flops_per_cycle },
        cache: k8_cache(p),
        memory: k8_memory(p),
        link: k8_link(p),
        edges: vec![LinkEdge::new(0, 1)],
        coherence: k8_coherence(p, p.probe_capacity_small),
        node_memory: Vec::new(),
        edge_links: Vec::new(),
        memory_only_nodes: 0,
    }
}

/// "Longs": the Iwill H8501 — eight dual-core 1.8 GHz Opteron 865 sockets
/// on a 2×4 HyperTransport **ladder** (two rails of four sockets joined by
/// four rungs), 4 GB of dual-channel DDR-400 per socket.
///
/// Socket numbering: socket `r * 2 + c` sits at row `r` (0–3), column `c`
/// (0–1). Rungs connect the two columns of each row; rails connect
/// adjacent rows within a column.
///
/// ```
/// use corescope_machine::{systems, Machine};
/// let m = Machine::new(systems::longs());
/// assert_eq!(m.topology().diameter(), 4);
/// ```
pub fn longs() -> MachineSpec {
    longs_with(&CalibParams::paper_2006())
}

/// [`longs`] built from an arbitrary calibration point.
pub fn longs_with(p: &CalibParams) -> MachineSpec {
    let mut edges = Vec::new();
    for r in 0..4 {
        edges.push(LinkEdge::new(r * 2, r * 2 + 1)); // rung
        if r + 1 < 4 {
            edges.push(LinkEdge::new(r * 2, (r + 1) * 2)); // left rail
            edges.push(LinkEdge::new(r * 2 + 1, (r + 1) * 2 + 1)); // right rail
        }
    }
    MachineSpec {
        name: "longs".into(),
        sockets: vec![4.0 * calib::GIB; 8],
        cores_per_socket: 2,
        core: CoreSpec { frequency_hz: 1.8e9, flops_per_cycle: p.flops_per_cycle },
        cache: k8_cache(p),
        memory: k8_memory(p),
        link: k8_link(p),
        edges,
        coherence: k8_coherence(p, p.probe_capacity_ladder),
        node_memory: Vec::new(),
        edge_links: Vec::new(),
        memory_only_nodes: 0,
    }
}

/// All three preset specs, in the paper's Table 1 order.
pub fn all() -> Vec<MachineSpec> {
    vec![tiger(), dmz(), longs()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn table1_core_counts() {
        assert_eq!(Machine::new(tiger()).num_cores(), 2);
        assert_eq!(Machine::new(dmz()).num_cores(), 4);
        assert_eq!(Machine::new(longs()).num_cores(), 16);
    }

    #[test]
    fn longs_ladder_has_ten_edges() {
        // 4 rungs + 2 rails x 3 = 10 undirected edges.
        assert_eq!(longs().edges.len(), 10);
    }

    #[test]
    fn longs_runs_slower_clock() {
        assert!(longs().core.frequency_hz < dmz().core.frequency_hz);
    }

    #[test]
    fn single_core_streaming_bandwidth_calibration() {
        // Little's law check: a DMZ core should sustain ~4 GB/s from local
        // memory; a Longs core should sustain under 2.5 GB/s (the paper
        // reports "less than half of the more than 4 GB/s expected").
        for (spec, lo, hi) in [(dmz(), 3.0e9, 5.5e9), (longs(), 1.2e9, 2.5e9)] {
            let m = Machine::new(spec);
            let lat = m.memory_latency(crate::CoreId::new(0), crate::NumaNodeId::new(0));
            let bw = m.spec().cache.stream_mlp * m.spec().cache.line_bytes / lat;
            assert!(
                bw > lo && bw < hi,
                "{}: single-core bw {:.2} GB/s outside [{:.1}, {:.1}]",
                m.spec().name,
                bw / 1e9,
                lo / 1e9,
                hi / 1e9
            );
        }
    }

    #[test]
    fn paper_point_reproduces_every_preset() {
        let p = CalibParams::paper_2006();
        assert_eq!(tiger_with(&p), tiger());
        assert_eq!(dmz_with(&p), dmz());
        assert_eq!(longs_with(&p), longs());
    }

    #[test]
    fn perturbed_point_changes_the_spec() {
        let mut p = CalibParams::paper_2006();
        p.dram_latency *= 1.25;
        assert_ne!(longs_with(&p), longs());
        assert_eq!(longs_with(&p).memory.idle_latency, p.dram_latency);
    }

    #[test]
    fn all_returns_three_systems() {
        let names: Vec<_> = all().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["tiger", "dmz", "longs"]);
    }
}
