//! Scheduled fault injection: time-ordered plans of resource and rank
//! faults applied mid-simulation.
//!
//! A [`FaultPlan`] is a validated, time-sorted schedule of
//! [`FaultEvent`]s. The engine merges the schedule into its discrete-event
//! loop: when a fault fires, active flow rates are re-solved under the new
//! capacities and every pending completion event is recomputed. Faults
//! therefore interact correctly with in-flight traffic — a link brownout
//! slows the transfers crossing it *from that instant*, and a later
//! restore speeds them back up.
//!
//! Capacity faults are expressed as a `factor` applied to the resource's
//! *nominal* capacity (whatever the engine was configured with before the
//! run, including any pre-run [`crate::Engine::set_link_capacity`]
//! overrides). `factor == 0.0` kills the resource outright; restore events
//! return it to nominal. Rank faults freeze a rank's instruction stream:
//! a stalled rank finishes the operation it is currently executing but
//! dispatches nothing further until a matching [`FaultKind::RankResume`]
//! fires. A rank stalled forever surfaces as
//! [`crate::Error::RankStalled`], never as a hang — the engine's watchdog
//! guarantees every starved configuration returns a typed error.
//!
//! ```
//! use corescope_machine::faults::FaultPlan;
//! use corescope_machine::LinkId;
//!
//! // Brown out link 0 to a quarter of its bandwidth during [1ms, 2ms).
//! let plan = FaultPlan::new()
//!     .link_degrade(1e-3, LinkId::new(0), 0.25)
//!     .link_restore(2e-3, LinkId::new(0));
//! assert_eq!(plan.events().len(), 2);
//! ```

use crate::error::{Error, Result};
use crate::ids::{LinkId, RankId, SocketId};
use crate::Machine;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Scales a directed link to `factor` × its nominal capacity.
    /// `factor == 0.0` severs the link.
    LinkDegrade {
        /// The affected link.
        link: LinkId,
        /// Multiplier on nominal capacity, in `[0, ∞)`.
        factor: f64,
    },
    /// Returns a link to its nominal capacity.
    LinkRestore {
        /// The restored link.
        link: LinkId,
    },
    /// Scales a socket's memory controller to `factor` × nominal.
    ControllerThrottle {
        /// The affected socket.
        socket: SocketId,
        /// Multiplier on nominal capacity, in `[0, ∞)`.
        factor: f64,
    },
    /// Returns a memory controller to its nominal capacity.
    ControllerRestore {
        /// The restored socket.
        socket: SocketId,
    },
    /// Scales the machine-wide coherence-probe fabric to `factor` ×
    /// nominal. Only meaningful on multi-socket machines (which are the
    /// only ones that have a probe fabric).
    ProbeBrownout {
        /// Multiplier on nominal capacity, in `[0, ∞)`.
        factor: f64,
    },
    /// Returns the probe fabric to its nominal capacity.
    ProbeRestore,
    /// Freezes a rank's instruction stream after its current operation.
    RankStall {
        /// The stalled rank.
        rank: RankId,
    },
    /// Unfreezes a stalled rank.
    RankResume {
        /// The resumed rank.
        rank: RankId,
    },
    /// Kills a rank outright: its in-flight work is lost. Without a
    /// [`crate::recovery::CheckpointPolicy`] the run fails with the typed
    /// [`crate::Error::RankKilled`]; with one, the engine rolls the run
    /// back to the last completed checkpoint and replays.
    RankKill {
        /// The killed rank.
        rank: RankId,
    },
    /// Severs a directed link outright (capacity to zero). Unlike
    /// [`FaultKind::LinkDegrade`] with `factor == 0.0`, a failed link
    /// marks in-flight transfers crossing it as lost: with a
    /// [`crate::recovery::RetryPolicy`] configured they are retransmitted
    /// from scratch after a detection timeout plus backoff, instead of
    /// starving into [`crate::Error::RankStalled`]. A later
    /// [`FaultKind::LinkRestore`] heals the path.
    LinkFail {
        /// The failed link.
        link: LinkId,
    },
}

/// One fault at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time (seconds) at which the fault fires.
    pub at: f64,
    /// The fault applied.
    pub kind: FaultKind,
}

/// A time-sorted schedule of faults.
///
/// Build with the chainable constructors ([`FaultPlan::link_degrade`] and
/// friends) or [`FaultPlan::push`]; events are kept sorted by time with
/// insertion order preserved among equal times. Validation against a
/// concrete machine and rank count happens when the plan is handed to
/// [`crate::Engine::run_with_faults`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (equivalent to a fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event, keeping the schedule time-sorted (stable for ties).
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
        self
    }

    /// Chainable [`FaultKind::LinkDegrade`].
    pub fn link_degrade(mut self, at: f64, link: LinkId, factor: f64) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::LinkDegrade { link, factor } });
        self
    }

    /// Chainable [`FaultKind::LinkRestore`].
    pub fn link_restore(mut self, at: f64, link: LinkId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::LinkRestore { link } });
        self
    }

    /// Chainable [`FaultKind::ControllerThrottle`].
    pub fn controller_throttle(mut self, at: f64, socket: SocketId, factor: f64) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::ControllerThrottle { socket, factor } });
        self
    }

    /// Chainable [`FaultKind::ControllerRestore`].
    pub fn controller_restore(mut self, at: f64, socket: SocketId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::ControllerRestore { socket } });
        self
    }

    /// Chainable [`FaultKind::ProbeBrownout`].
    pub fn probe_brownout(mut self, at: f64, factor: f64) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::ProbeBrownout { factor } });
        self
    }

    /// Chainable [`FaultKind::ProbeRestore`].
    pub fn probe_restore(mut self, at: f64) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::ProbeRestore });
        self
    }

    /// Chainable [`FaultKind::RankStall`].
    pub fn rank_stall(mut self, at: f64, rank: RankId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::RankStall { rank } });
        self
    }

    /// Chainable [`FaultKind::RankResume`].
    pub fn rank_resume(mut self, at: f64, rank: RankId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::RankResume { rank } });
        self
    }

    /// Chainable [`FaultKind::RankKill`].
    pub fn rank_kill(mut self, at: f64, rank: RankId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::RankKill { rank } });
        self
    }

    /// Chainable [`FaultKind::LinkFail`].
    pub fn link_fail(mut self, at: f64, link: LinkId) -> Self {
        self.push(FaultEvent { at, kind: FaultKind::LinkFail { link } });
        self
    }

    /// The schedule, sorted by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against a machine and rank count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for non-finite or negative times,
    /// invalid factors (negative, NaN, or infinite), out-of-range link /
    /// socket / rank targets, or probe faults on a single-socket machine
    /// (which has no probe fabric). The check is also *stateful* over the
    /// time-ordered schedule: restore/resume events with no matching prior
    /// degrade/stall, a second concurrent degrade of an already-degraded
    /// resource, and killing or stalling the same rank twice are all
    /// rejected — such plans are almost always sweep-generator bugs, and
    /// their semantics (which nominal does the restore return to?) would
    /// be ambiguous.
    pub fn validate(&self, machine: &Machine, num_ranks: usize) -> Result<()> {
        let num_links = machine.topology().num_links();
        let num_sockets = machine.num_sockets();
        // Degraded/failed state per resource and per rank, tracked in
        // schedule order.
        let mut link_down = vec![false; num_links];
        let mut controller_down = vec![false; num_sockets];
        let mut probe_down = false;
        let mut stalled = vec![false; num_ranks];
        let mut killed = vec![false; num_ranks];
        for (i, e) in self.events.iter().enumerate() {
            if !e.at.is_finite() || e.at < 0.0 {
                return Err(Error::InvalidSpec(format!(
                    "fault event {i} has invalid time {}",
                    e.at
                )));
            }
            let check_factor = |factor: f64| {
                if !factor.is_finite() || factor < 0.0 {
                    Err(Error::InvalidSpec(format!(
                        "fault event {i} has invalid capacity factor {factor}"
                    )))
                } else {
                    Ok(())
                }
            };
            let check_link = |link: LinkId| {
                if link.index() >= num_links {
                    Err(Error::InvalidSpec(format!(
                        "fault event {i} targets {link} but the machine has {num_links} links"
                    )))
                } else {
                    Ok(())
                }
            };
            let check_socket = |socket: SocketId| {
                if socket.index() >= num_sockets {
                    Err(Error::InvalidSpec(format!(
                        "fault event {i} targets {socket} but the machine has {num_sockets} sockets"
                    )))
                } else {
                    Ok(())
                }
            };
            let check_rank = |rank: RankId| {
                if rank.index() >= num_ranks {
                    Err(Error::InvalidSpec(format!(
                        "fault event {i} targets {rank} but the run has {num_ranks} ranks"
                    )))
                } else {
                    Ok(())
                }
            };
            let check_probe = || {
                if num_sockets <= 1 {
                    Err(Error::InvalidSpec(format!(
                        "fault event {i} targets the probe fabric but a single-socket machine has none"
                    )))
                } else {
                    Ok(())
                }
            };
            let stateful =
                |what: &str| Error::InvalidSpec(format!("fault event {i} ({:?}) {what}", e.kind));
            match e.kind {
                FaultKind::LinkDegrade { link, factor } => {
                    check_link(link)?;
                    check_factor(factor)?;
                    if link_down[link.index()] {
                        return Err(stateful("degrades an already-degraded link"));
                    }
                    link_down[link.index()] = true;
                }
                FaultKind::LinkFail { link } => {
                    check_link(link)?;
                    if link_down[link.index()] {
                        return Err(stateful("fails an already-degraded link"));
                    }
                    link_down[link.index()] = true;
                }
                FaultKind::LinkRestore { link } => {
                    check_link(link)?;
                    if !link_down[link.index()] {
                        return Err(stateful("restores a link with no prior degrade or fail"));
                    }
                    link_down[link.index()] = false;
                }
                FaultKind::ControllerThrottle { socket, factor } => {
                    check_socket(socket)?;
                    check_factor(factor)?;
                    if controller_down[socket.index()] {
                        return Err(stateful("throttles an already-throttled controller"));
                    }
                    controller_down[socket.index()] = true;
                }
                FaultKind::ControllerRestore { socket } => {
                    check_socket(socket)?;
                    if !controller_down[socket.index()] {
                        return Err(stateful("restores a controller with no prior throttle"));
                    }
                    controller_down[socket.index()] = false;
                }
                FaultKind::ProbeBrownout { factor } => {
                    check_probe()?;
                    check_factor(factor)?;
                    if probe_down {
                        return Err(stateful("browns out an already-degraded probe fabric"));
                    }
                    probe_down = true;
                }
                FaultKind::ProbeRestore => {
                    check_probe()?;
                    if !probe_down {
                        return Err(stateful("restores the probe fabric with no prior brownout"));
                    }
                    probe_down = false;
                }
                FaultKind::RankStall { rank } => {
                    check_rank(rank)?;
                    if stalled[rank.index()] {
                        return Err(stateful("stalls an already-stalled rank"));
                    }
                    if killed[rank.index()] {
                        return Err(stateful("stalls a killed rank"));
                    }
                    stalled[rank.index()] = true;
                }
                FaultKind::RankResume { rank } => {
                    check_rank(rank)?;
                    if killed[rank.index()] {
                        return Err(stateful("resumes a killed rank"));
                    }
                    if !stalled[rank.index()] {
                        return Err(stateful("resumes a rank with no prior stall"));
                    }
                    stalled[rank.index()] = false;
                }
                FaultKind::RankKill { rank } => {
                    check_rank(rank)?;
                    if killed[rank.index()] {
                        return Err(stateful("kills an already-killed rank"));
                    }
                    killed[rank.index()] = true;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn events_sort_by_time_with_stable_ties() {
        let plan = FaultPlan::new()
            .link_restore(2.0, LinkId::new(0))
            .link_degrade(1.0, LinkId::new(0), 0.5)
            .probe_brownout(1.0, 0.9);
        let times: Vec<f64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![1.0, 1.0, 2.0]);
        // The two t=1.0 events keep insertion order.
        assert!(matches!(plan.events()[0].kind, FaultKind::LinkDegrade { .. }));
        assert!(matches!(plan.events()[1].kind, FaultKind::ProbeBrownout { .. }));
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let m = Machine::new(systems::dmz());
        let plan = FaultPlan::new()
            .link_degrade(0.0, LinkId::new(0), 0.0)
            .controller_throttle(1.0, SocketId::new(1), 0.5)
            .probe_brownout(2.0, 0.25)
            .rank_stall(3.0, RankId::new(1))
            .rank_resume(4.0, RankId::new(1));
        assert!(plan.validate(&m, 2).is_ok());
    }

    #[test]
    fn validate_rejects_bad_times_and_factors() {
        let m = Machine::new(systems::dmz());
        for plan in [
            FaultPlan::new().link_degrade(-1.0, LinkId::new(0), 0.5),
            FaultPlan::new().link_degrade(f64::NAN, LinkId::new(0), 0.5),
            FaultPlan::new().link_degrade(0.0, LinkId::new(0), -0.5),
            FaultPlan::new().link_degrade(0.0, LinkId::new(0), f64::INFINITY),
        ] {
            assert!(
                matches!(plan.validate(&m, 1), Err(Error::InvalidSpec(_))),
                "{plan:?} should fail validation"
            );
        }
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let m = Machine::new(systems::dmz());
        for plan in [
            FaultPlan::new().link_degrade(0.0, LinkId::new(99), 0.5),
            FaultPlan::new().controller_throttle(0.0, SocketId::new(99), 0.5),
            FaultPlan::new().rank_stall(0.0, RankId::new(5)),
        ] {
            assert!(
                matches!(plan.validate(&m, 2), Err(Error::InvalidSpec(_))),
                "{plan:?} should fail validation"
            );
        }
    }

    #[test]
    fn validate_rejects_restores_with_no_prior_degrade() {
        let m = Machine::new(systems::dmz());
        for plan in [
            FaultPlan::new().link_restore(1.0, LinkId::new(0)),
            FaultPlan::new().controller_restore(1.0, SocketId::new(0)),
            FaultPlan::new().probe_restore(1.0),
            FaultPlan::new().rank_resume(1.0, RankId::new(0)),
            // A restore *before* the degrade is just as unmatched.
            FaultPlan::new()
                .link_degrade(2.0, LinkId::new(0), 0.5)
                .link_restore(1.0, LinkId::new(0)),
        ] {
            assert!(
                matches!(plan.validate(&m, 2), Err(Error::InvalidSpec(_))),
                "{plan:?} should fail validation"
            );
        }
    }

    #[test]
    fn validate_rejects_duplicate_concurrent_degrades() {
        let m = Machine::new(systems::dmz());
        for plan in [
            FaultPlan::new().link_degrade(0.0, LinkId::new(0), 0.5).link_degrade(
                1.0,
                LinkId::new(0),
                0.25,
            ),
            FaultPlan::new().link_degrade(0.0, LinkId::new(0), 0.5).link_fail(1.0, LinkId::new(0)),
            FaultPlan::new().controller_throttle(0.0, SocketId::new(0), 0.5).controller_throttle(
                1.0,
                SocketId::new(0),
                0.25,
            ),
            FaultPlan::new().probe_brownout(0.0, 0.5).probe_brownout(1.0, 0.25),
        ] {
            assert!(
                matches!(plan.validate(&m, 2), Err(Error::InvalidSpec(_))),
                "{plan:?} should fail validation"
            );
        }
        // Degrade → restore → degrade again is a well-formed brownout pair.
        let ok = FaultPlan::new()
            .link_degrade(0.0, LinkId::new(0), 0.5)
            .link_restore(1.0, LinkId::new(0))
            .link_degrade(2.0, LinkId::new(0), 0.25);
        assert!(ok.validate(&m, 2).is_ok());
    }

    #[test]
    fn validate_rejects_repeat_rank_kills_and_stalls() {
        let m = Machine::new(systems::dmz());
        for plan in [
            FaultPlan::new().rank_kill(0.0, RankId::new(1)).rank_kill(1.0, RankId::new(1)),
            FaultPlan::new().rank_stall(0.0, RankId::new(1)).rank_stall(1.0, RankId::new(1)),
            FaultPlan::new().rank_kill(0.0, RankId::new(1)).rank_stall(1.0, RankId::new(1)),
            FaultPlan::new().rank_kill(0.0, RankId::new(1)).rank_resume(1.0, RankId::new(1)),
        ] {
            assert!(
                matches!(plan.validate(&m, 2), Err(Error::InvalidSpec(_))),
                "{plan:?} should fail validation"
            );
        }
        // Distinct ranks, and stall→resume→stall, are fine.
        let ok = FaultPlan::new()
            .rank_kill(0.0, RankId::new(0))
            .rank_stall(1.0, RankId::new(1))
            .rank_resume(2.0, RankId::new(1))
            .rank_stall(3.0, RankId::new(1));
        assert!(ok.validate(&m, 2).is_ok());
        let two_kills =
            FaultPlan::new().rank_kill(0.0, RankId::new(0)).rank_kill(1.0, RankId::new(1));
        assert!(two_kills.validate(&m, 2).is_ok());
    }

    #[test]
    fn validate_accepts_link_fail_then_restore() {
        let m = Machine::new(systems::dmz());
        let plan =
            FaultPlan::new().link_fail(1.0, LinkId::new(0)).link_restore(2.0, LinkId::new(0));
        assert!(plan.validate(&m, 2).is_ok());
        assert!(matches!(plan.events()[0].kind, FaultKind::LinkFail { .. }));
    }

    #[test]
    fn validate_rejects_probe_faults_on_single_socket_machines() {
        let mut spec = systems::tiger();
        spec.sockets.truncate(1);
        spec.edges.clear();
        let m = Machine::new(spec);
        let plan = FaultPlan::new().probe_brownout(0.0, 0.5);
        assert!(matches!(plan.validate(&m, 1), Err(Error::InvalidSpec(_))));
    }
}
