//! Error types for machine construction and simulation.

use crate::ids::RankId;
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building machines or running simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The machine specification is internally inconsistent.
    InvalidSpec(String),
    /// The socket link graph is not connected, so some routes do not exist.
    DisconnectedTopology {
        /// A socket unreachable from socket 0.
        unreachable: usize,
    },
    /// A program referenced a core outside the machine.
    CoreOutOfRange {
        /// The offending core index.
        core: usize,
        /// The number of cores the machine actually has.
        num_cores: usize,
    },
    /// A program referenced a NUMA node outside the machine.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes the machine actually has.
        num_nodes: usize,
    },
    /// Two ranks were bound to the same core but the engine was configured
    /// to forbid oversubscription.
    CoreOversubscribed {
        /// The core with more than one rank.
        core: usize,
    },
    /// The simulation stopped making progress: every live rank is blocked
    /// on a message that will never arrive (e.g. a `Recv` with no matching
    /// `Send`).
    Deadlock {
        /// Ranks blocked at the time of detection.
        blocked: Vec<RankId>,
        /// Simulated time when the deadlock was detected.
        at_time: f64,
    },
    /// A rank's memory layout was missing or had non-positive weight.
    InvalidLayout(String),
    /// A flow was routed through a resource with zero capacity (e.g. a
    /// deliberately failed link in failure-injection tests).
    ZeroCapacityRoute {
        /// Human-readable description of the dead resource.
        resource: String,
    },
    /// The run exceeded the engine's discrete-event budget (see
    /// [`crate::Engine::with_max_events`]) — a runaway-simulation guard.
    EventBudgetExhausted {
        /// The configured budget.
        budget: usize,
        /// Simulated time when the budget was exhausted.
        at_time: f64,
    },
    /// The next event would push simulated time past the engine's
    /// simulated-time budget (see [`crate::Engine::with_time_budget`]).
    TimeBudgetExhausted {
        /// The configured budget in simulated seconds.
        budget: f64,
        /// The event time that would have exceeded it.
        next_event: f64,
    },
    /// A rank can never finish: it is frozen by an unresumed
    /// [`crate::faults::FaultKind::RankStall`], or its traffic is starved
    /// by a resource degraded to zero capacity with no restore scheduled.
    RankStalled {
        /// The rank that cannot make progress.
        rank: RankId,
        /// Simulated time when the stall was detected.
        at_time: f64,
        /// The starved resource, when the stall is capacity-induced.
        resource: Option<String>,
    },
    /// A [`crate::faults::FaultKind::RankKill`] fired with no
    /// [`crate::recovery::CheckpointPolicy`] configured, so the run cannot
    /// recover.
    RankKilled {
        /// The killed rank.
        rank: RankId,
        /// Simulated time when the kill fired.
        at_time: f64,
    },
    /// A route lookup between two sockets found no next hop — the
    /// topology's routing table does not connect them.
    Disconnected {
        /// The source socket index.
        src: usize,
        /// The unreachable destination socket index.
        dst: usize,
    },
    /// A placement request cannot be satisfied on this machine (e.g. a
    /// socket with no cores, or more ranks than a mapping mode can host).
    InvalidPlacement(String),
    /// A transfer crossing a failed link exhausted its retry budget (see
    /// [`crate::recovery::RetryPolicy`]) without the link being restored.
    RetriesExhausted {
        /// The rank whose transfer gave up.
        rank: RankId,
        /// Retries attempted before giving up.
        attempts: usize,
        /// Simulated time when the transfer gave up.
        at_time: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSpec(msg) => write!(f, "invalid machine spec: {msg}"),
            Error::DisconnectedTopology { unreachable } => {
                write!(f, "socket {unreachable} is unreachable from socket 0")
            }
            Error::CoreOutOfRange { core, num_cores } => {
                write!(f, "core {core} out of range (machine has {num_cores} cores)")
            }
            Error::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (machine has {num_nodes} nodes)")
            }
            Error::CoreOversubscribed { core } => {
                write!(f, "core {core} has more than one rank bound to it")
            }
            Error::Deadlock { blocked, at_time } => {
                write!(f, "deadlock at t={at_time:.6}s: {} rank(s) blocked forever", blocked.len())
            }
            Error::InvalidLayout(msg) => write!(f, "invalid memory layout: {msg}"),
            Error::ZeroCapacityRoute { resource } => {
                write!(f, "flow routed through zero-capacity resource {resource}")
            }
            Error::EventBudgetExhausted { budget, at_time } => {
                write!(f, "event budget {budget} exhausted at t={at_time:.6}s")
            }
            Error::TimeBudgetExhausted { budget, next_event } => write!(
                f,
                "simulated-time budget {budget:.6}s exhausted (next event at t={next_event:.6}s)"
            ),
            Error::RankStalled { rank, at_time, resource } => match resource {
                Some(r) => {
                    write!(f, "{rank} stalled forever at t={at_time:.6}s: traffic starved by {r}")
                }
                None => write!(f, "{rank} stalled forever at t={at_time:.6}s"),
            },
            Error::RankKilled { rank, at_time } => {
                write!(f, "{rank} killed at t={at_time:.6}s with no checkpoint policy to recover")
            }
            Error::Disconnected { src, dst } => {
                write!(f, "no route from socket {src} to socket {dst}")
            }
            Error::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            Error::RetriesExhausted { rank, attempts, at_time } => write!(
                f,
                "{rank} exhausted {attempts} transfer retries at t={at_time:.6}s \
                 (failed link never restored)"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_reasonably() {
        let e = Error::CoreOutOfRange { core: 9, num_cores: 4 };
        assert_eq!(e.to_string(), "core 9 out of range (machine has 4 cores)");
        let e = Error::Deadlock { blocked: vec![RankId::new(0)], at_time: 1.5 };
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn watchdog_errors_name_the_budget_or_culprit() {
        let e = Error::EventBudgetExhausted { budget: 100, at_time: 0.5 };
        assert!(e.to_string().contains("100"));
        let e = Error::TimeBudgetExhausted { budget: 2.0, next_event: 3.5 };
        assert!(e.to_string().contains("2.0"));
        let e = Error::RankStalled {
            rank: RankId::new(3),
            at_time: 1.0,
            resource: Some("link:socket0->socket1".into()),
        };
        let s = e.to_string();
        assert!(s.contains("rank3") && s.contains("link:socket0->socket1"), "{s}");
        let e = Error::RankStalled { rank: RankId::new(1), at_time: 1.0, resource: None };
        assert!(e.to_string().contains("rank1"));
    }

    #[test]
    fn recovery_errors_name_the_rank_and_cause() {
        let e = Error::RankKilled { rank: RankId::new(2), at_time: 0.25 };
        let s = e.to_string();
        assert!(s.contains("rank2") && s.contains("checkpoint"), "{s}");
        let e = Error::Disconnected { src: 0, dst: 3 };
        assert!(e.to_string().contains("socket 0") && e.to_string().contains("socket 3"));
        let e = Error::InvalidPlacement("socket 1 has no cores".into());
        assert!(e.to_string().contains("socket 1 has no cores"));
        let e = Error::RetriesExhausted { rank: RankId::new(0), attempts: 4, at_time: 1.0 };
        assert!(e.to_string().contains("4"), "{e}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
