//! Checkpoint/restart and transport-retry policies.
//!
//! The recovery model is deliberately simple and physical:
//!
//! * A [`CheckpointPolicy`] makes the engine take a **coordinated
//!   checkpoint** every `interval` simulated seconds: every live rank
//!   streams `bytes_per_rank` of state through the memory system (its own
//!   NUMA layout, or a designated node). Checkpoint traffic is real flow
//!   traffic — it contends with application DRAM and HyperTransport
//!   traffic under max-min fairness, so its cost depends on placement and
//!   shows up in trace attribution exactly like any other load.
//! * When a [`crate::faults::FaultKind::RankKill`] fires under an active
//!   policy, the whole job rolls back to the last *completed* checkpoint
//!   and replays from there after `restart_delay` seconds of downtime.
//!   Because the engine snapshots application *and* channel state at
//!   checkpoint completion, the rollback is a consistent global cut in
//!   the Chandy–Lamport sense.
//! * A [`RetryPolicy`] governs transfers crossing a link severed by
//!   [`crate::faults::FaultKind::LinkFail`]: instead of starving into
//!   [`crate::Error::RankStalled`], the transfer is detected lost after
//!   `detection_timeout`, then retransmitted from scratch with
//!   exponential backoff until the link is restored or `max_retries` is
//!   exhausted.
//!
//! The classic first-order optimum for the checkpoint interval is the
//! Young/Daly approximation `τ* ≈ sqrt(2 δ M)` for per-checkpoint cost
//! `δ` and mean time between failures `M`; [`young_daly_interval`]
//! computes it and artifact X5 checks the simulator actually lands there.

use crate::error::{Error, Result};
use crate::ids::NumaNodeId;
use crate::Machine;

/// Where a rank's checkpoint bytes are written.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointTarget {
    /// Each rank streams its checkpoint through its own memory layout —
    /// the NUMA placement the affinity scheme gave it.
    OwnLayout,
    /// Every rank writes to a single designated node (a shared in-memory
    /// checkpoint store), concentrating the traffic on one controller.
    Node(NumaNodeId),
}

/// Coordinated checkpoint/restart policy for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Simulated seconds between checkpoint *starts* (and between a
    /// recovery and the next checkpoint).
    pub interval: f64,
    /// Bytes of state each live rank streams per checkpoint.
    pub bytes_per_rank: f64,
    /// Where the checkpoint traffic lands.
    pub target: CheckpointTarget,
    /// Downtime between a rank kill and the rolled-back job resuming
    /// (failure detection plus relaunch).
    pub restart_delay: f64,
}

impl CheckpointPolicy {
    /// A policy writing through each rank's own layout with no restart
    /// downtime.
    pub fn new(interval: f64, bytes_per_rank: f64) -> Self {
        Self { interval, bytes_per_rank, target: CheckpointTarget::OwnLayout, restart_delay: 0.0 }
    }

    /// Sets the checkpoint destination.
    #[must_use]
    pub fn with_target(mut self, target: CheckpointTarget) -> Self {
        self.target = target;
        self
    }

    /// Sets the restart downtime after a kill.
    #[must_use]
    pub fn with_restart_delay(mut self, delay: f64) -> Self {
        self.restart_delay = delay;
        self
    }

    /// Checks the policy against a machine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for non-positive or non-finite
    /// intervals/bytes, negative or non-finite restart delay, or a target
    /// node outside the machine.
    pub fn validate(&self, machine: &Machine) -> Result<()> {
        if !self.interval.is_finite() || self.interval <= 0.0 {
            return Err(Error::InvalidSpec(format!(
                "checkpoint interval must be positive and finite, got {}",
                self.interval
            )));
        }
        if !self.bytes_per_rank.is_finite() || self.bytes_per_rank <= 0.0 {
            return Err(Error::InvalidSpec(format!(
                "checkpoint bytes_per_rank must be positive and finite, got {}",
                self.bytes_per_rank
            )));
        }
        if !self.restart_delay.is_finite() || self.restart_delay < 0.0 {
            return Err(Error::InvalidSpec(format!(
                "checkpoint restart_delay must be non-negative and finite, got {}",
                self.restart_delay
            )));
        }
        if let CheckpointTarget::Node(node) = self.target {
            if node.index() >= machine.num_sockets() {
                return Err(Error::NodeOutOfRange {
                    node: node.index(),
                    num_nodes: machine.num_sockets(),
                });
            }
        }
        Ok(())
    }
}

/// Timeout/retry/backoff policy for transfers crossing a failed link.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Simulated seconds before a transfer on a failed link is declared
    /// lost (failure-detector timeout).
    pub detection_timeout: f64,
    /// Base backoff before the first retransmit; doubles per attempt.
    pub backoff: f64,
    /// Retransmit attempts before the run fails with
    /// [`Error::RetriesExhausted`].
    pub max_retries: usize,
}

impl RetryPolicy {
    /// A policy with the given detection timeout, backoff equal to the
    /// timeout, and 8 attempts.
    pub fn new(detection_timeout: f64) -> Self {
        Self { detection_timeout, backoff: detection_timeout, max_retries: 8 }
    }

    /// Sets the base backoff.
    #[must_use]
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Delay from loss detection to the start of attempt `attempt`
    /// (0-based): exponential backoff, `backoff × 2^attempt`.
    pub fn backoff_for(&self, attempt: usize) -> f64 {
        self.backoff * (1u64 << attempt.min(32)) as f64
    }

    /// Checks the policy is well-formed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for non-positive or non-finite
    /// timeouts/backoffs or a zero retry budget.
    pub fn validate(&self) -> Result<()> {
        if !self.detection_timeout.is_finite() || self.detection_timeout <= 0.0 {
            return Err(Error::InvalidSpec(format!(
                "retry detection_timeout must be positive and finite, got {}",
                self.detection_timeout
            )));
        }
        if !self.backoff.is_finite() || self.backoff <= 0.0 {
            return Err(Error::InvalidSpec(format!(
                "retry backoff must be positive and finite, got {}",
                self.backoff
            )));
        }
        if self.max_retries == 0 {
            return Err(Error::InvalidSpec("retry max_retries must be at least 1".into()));
        }
        Ok(())
    }
}

/// The Young/Daly first-order optimal checkpoint interval
/// `τ* = sqrt(2 δ M)` for per-checkpoint cost `delta` and mean time
/// between failures `mtbf`.
pub fn young_daly_interval(delta: f64, mtbf: f64) -> f64 {
    (2.0 * delta * mtbf).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn policy_builders_and_validation() {
        let m = Machine::new(systems::dmz());
        let p = CheckpointPolicy::new(1e-3, 1e6)
            .with_target(CheckpointTarget::Node(NumaNodeId::new(1)))
            .with_restart_delay(5e-4);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.restart_delay, 5e-4);

        for bad in [
            CheckpointPolicy::new(0.0, 1e6),
            CheckpointPolicy::new(1e-3, 0.0),
            CheckpointPolicy::new(f64::NAN, 1e6),
            CheckpointPolicy::new(1e-3, 1e6).with_restart_delay(-1.0),
        ] {
            assert!(bad.validate(&m).is_err(), "{bad:?} should fail validation");
        }
        let off_machine = CheckpointPolicy::new(1e-3, 1e6)
            .with_target(CheckpointTarget::Node(NumaNodeId::new(9)));
        assert!(matches!(off_machine.validate(&m), Err(Error::NodeOutOfRange { .. })));
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let r = RetryPolicy::new(1e-4).with_backoff(1e-5).with_max_retries(3);
        assert!(r.validate().is_ok());
        assert_eq!(r.backoff_for(0), 1e-5);
        assert_eq!(r.backoff_for(1), 2e-5);
        assert_eq!(r.backoff_for(2), 4e-5);
        assert!(RetryPolicy::new(0.0).validate().is_err());
        assert!(RetryPolicy::new(1e-4).with_max_retries(0).validate().is_err());
    }

    #[test]
    fn young_daly_matches_the_formula() {
        let tau = young_daly_interval(0.5, 100.0);
        assert!((tau - 10.0).abs() < 1e-12);
        // Costlier checkpoints and rarer failures both push the optimum up.
        assert!(young_daly_interval(1.0, 100.0) > tau);
        assert!(young_daly_interval(0.5, 400.0) > tau);
    }
}
