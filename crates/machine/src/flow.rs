//! Shared-resource flows and the max-min fair rate solver.
//!
//! Every byte-moving activity in the simulator — a compute phase's DRAM
//! traffic, an MPI message crossing HyperTransport links — is a *flow*
//! over a route of resources (memory controllers, directed links), with a
//! per-flow rate cap (the core's Little's-law limit or the transport's
//! copy bandwidth). Rates are assigned by **progressive-filling max-min
//! fairness**: all flows ramp up together; when a resource saturates or a
//! flow hits its cap, the affected flows freeze and the rest continue.
//!
//! This is the standard fluid model for fair-shared interconnects and
//! reproduces the paper's contention effects: two cores streaming through
//! one DDR-400 controller each get half of it, while a cache-resident
//! DGEMM is never throttled.

use crate::error::{Error, Result};

/// Index of a resource in a [`ResourceTable`].
pub type ResourceIndex = usize;

/// A named, capacity-limited shared resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Human-readable name ("mc:socket0", "link:socket0->socket1").
    pub name: String,
    /// Capacity in bytes/s.
    pub capacity: f64,
}

/// The set of shared resources in a machine.
///
/// Built once per simulation; failure-injection tests may degrade
/// individual capacities with [`ResourceTable::set_capacity`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceTable {
    resources: Vec<Resource>,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource and returns its index.
    pub fn add(&mut self, name: impl Into<String>, capacity: f64) -> ResourceIndex {
        self.resources.push(Resource { name: name.into(), capacity });
        self.resources.len() - 1
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// The resource at `index`.
    pub fn get(&self, index: ResourceIndex) -> &Resource {
        &self.resources[index]
    }

    /// Overrides a resource's capacity (failure injection / what-if).
    pub fn set_capacity(&mut self, index: ResourceIndex, capacity: f64) {
        self.resources[index].capacity = capacity;
    }

    /// Capacities as a slice-compatible vector.
    pub fn capacities(&self) -> Vec<f64> {
        self.resources.iter().map(|r| r.capacity).collect()
    }
}

/// A flow demand handed to the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Resources the flow traverses (order irrelevant to the solver).
    pub route: Vec<ResourceIndex>,
    /// The flow's own maximum rate in bytes/s (must be finite and >= 0).
    pub cap: f64,
}

impl FlowSpec {
    /// Creates a flow over `route` with per-flow cap `cap`.
    pub fn new(route: Vec<ResourceIndex>, cap: f64) -> Self {
        Self { route, cap }
    }
}

/// What froze a flow during progressive filling.
///
/// Attribution is the solver-level half of the engine's bottleneck
/// accounting: every flow's rate stopped ramping either because the flow
/// hit its own cap (a core's Little's-law limit, a transport's copy
/// bandwidth) or because a shared resource on its route saturated (a
/// memory controller, a HyperTransport link, the coherence-probe fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// The flow reached its own rate cap (or had a zero cap to begin
    /// with).
    FlowCap,
    /// The flow froze because this route resource saturated.
    Resource(ResourceIndex),
}

/// Relative slack used to decide that a flow is at its cap or a resource
/// is saturated. Relative (not absolute) so that legitimately tiny caps
/// next to fast resources are never zero-rated, while accumulated f64
/// error over many filling rounds is still absorbed.
const REL_EPS: f64 = 1e-9;

/// Solves max-min fair rates for `flows` over `table`.
///
/// Returns one rate per flow, in input order. Flows with a zero cap or a
/// zero-capacity resource on their route receive rate 0; any positive
/// cap, however small, is a legitimate rate limit and is honoured.
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] if a flow references a resource outside
/// the table or has a non-finite cap.
pub fn solve_maxmin(table: &ResourceTable, flows: &[FlowSpec]) -> Result<Vec<f64>> {
    solve_inner(table, flows, None)
}

/// Like [`solve_maxmin`], also reporting which limit froze each flow.
///
/// The rates are bit-identical to [`solve_maxmin`]'s — attribution is
/// recorded on the side, never fed back into the arithmetic — so tracing
/// a run cannot perturb it.
///
/// # Errors
///
/// Same as [`solve_maxmin`].
pub fn solve_maxmin_attributed(
    table: &ResourceTable,
    flows: &[FlowSpec],
) -> Result<(Vec<f64>, Vec<Bottleneck>)> {
    let mut attribution = vec![Bottleneck::FlowCap; flows.len()];
    let rates = solve_inner(table, flows, Some(&mut attribution))?;
    Ok((rates, attribution))
}

fn solve_inner(
    table: &ResourceTable,
    flows: &[FlowSpec],
    mut attribution: Option<&mut Vec<Bottleneck>>,
) -> Result<Vec<f64>> {
    let caps = table.capacities();
    for (i, f) in flows.iter().enumerate() {
        if !f.cap.is_finite() || f.cap < 0.0 {
            return Err(Error::InvalidSpec(format!("flow {i} has invalid cap {}", f.cap)));
        }
        for &r in &f.route {
            if r >= caps.len() {
                return Err(Error::InvalidSpec(format!(
                    "flow {i} references resource {r} outside table of {}",
                    caps.len()
                )));
            }
        }
    }

    let n = flows.len();
    let mut rates = vec![0.0; n];
    if n == 0 {
        return Ok(rates);
    }

    let mut fixed = vec![false; n];
    let mut remaining = caps.clone();
    // Count of unfixed flows using each resource. A flow listing the same
    // resource twice consumes it twice (e.g. a hairpin route) — count
    // multiplicity.
    let mut usage = vec![0usize; caps.len()];
    for f in flows {
        for &r in &f.route {
            usage[r] += 1;
        }
    }

    let mut unfixed = n;
    // Immediately freeze exactly-zero-cap flows. Tiny-but-positive caps
    // are real rate limits and must survive to the filling loop — an
    // absolute epsilon here silently zero-rated a 1 B/s flow whenever a
    // GB/s resource shared the table.
    for (i, f) in flows.iter().enumerate() {
        if f.cap <= 0.0 {
            fixed[i] = true;
            unfixed -= 1;
            for &r in &f.route {
                usage[r] -= 1;
            }
        }
    }

    while unfixed > 0 {
        // Smallest headroom: either a resource's fair increment or a
        // flow's distance to its own cap.
        let mut inc = f64::INFINITY;
        for (r, &rem) in remaining.iter().enumerate() {
            if usage[r] > 0 {
                inc = inc.min(rem.max(0.0) / usage[r] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !fixed[i] {
                inc = inc.min(f.cap - rates[i]);
            }
        }
        debug_assert!(inc.is_finite(), "at least one limit must apply");
        let inc = inc.max(0.0);

        // Ramp all unfixed flows by `inc`.
        for (i, f) in flows.iter().enumerate() {
            if !fixed[i] {
                rates[i] += inc;
                for &r in &f.route {
                    remaining[r] -= inc;
                }
            }
        }

        // Freeze flows at their cap or on a saturated resource. Slack is
        // relative to the cap being compared against (zero-capacity
        // resources still satisfy `0 <= 0`).
        let mut froze_any = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let at_cap = f.cap - rates[i] <= f.cap * REL_EPS;
            // When both limits bind in the same round, attribute the
            // freeze to a saturated shared resource — contention is the
            // informative cause — and among saturated route resources
            // pick the most contended one (highest unfixed-flow count).
            let mut saturated: Option<ResourceIndex> = None;
            for &r in &f.route {
                if remaining[r] <= caps[r] * REL_EPS {
                    let more_contended = saturated.is_none_or(|s| usage[r] > usage[s]);
                    if more_contended {
                        saturated = Some(r);
                    }
                }
            }
            if at_cap || saturated.is_some() {
                fixed[i] = true;
                unfixed -= 1;
                froze_any = true;
                for &r in &f.route {
                    usage[r] -= 1;
                }
                if let Some(attr) = attribution.as_deref_mut() {
                    attr[i] = match saturated {
                        Some(r) => Bottleneck::Resource(r),
                        None => Bottleneck::FlowCap,
                    };
                }
            }
        }
        debug_assert!(froze_any, "progressive filling must freeze at least one flow");
        if !froze_any {
            // Defensive: avoid an infinite loop under pathological
            // floating-point behaviour by freezing everything.
            for (i, f) in flows.iter().enumerate() {
                if !fixed[i] {
                    fixed[i] = true;
                    unfixed -= 1;
                    for &r in &f.route {
                        usage[r] -= 1;
                    }
                }
            }
        }
    }
    Ok(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(caps: &[f64]) -> ResourceTable {
        let mut t = ResourceTable::new();
        for (i, &c) in caps.iter().enumerate() {
            t.add(format!("r{i}"), c);
        }
        t
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_resource() {
        let t = table(&[4.0e9]);
        let rates = solve_maxmin(&t, &[FlowSpec::new(vec![0], 3.0e9)]).unwrap();
        assert!((rates[0] - 3.0e9).abs() < 1.0);
        let rates = solve_maxmin(&t, &[FlowSpec::new(vec![0], 9.0e9)]).unwrap();
        assert!((rates[0] - 4.0e9).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_a_controller_fairly() {
        // The STREAM "second core" effect: both cores capped at 3.7 GB/s
        // individually, but the 6.4 GB/s controller limits each to 3.2.
        let t = table(&[6.4e9]);
        let flows = vec![FlowSpec::new(vec![0], 3.7e9), FlowSpec::new(vec![0], 3.7e9)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert!((rates[0] - 3.2e9).abs() < 1.0);
        assert!((rates[1] - 3.2e9).abs() < 1.0);
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        let t = table(&[10.0e9]);
        let flows = vec![FlowSpec::new(vec![0], 1.0e9), FlowSpec::new(vec![0], 20.0e9)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert!((rates[0] - 1.0e9).abs() < 1.0);
        assert!((rates[1] - 9.0e9).abs() < 1.0);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // Flow A uses r0+r1, flow B uses r1 only; r1 is the bottleneck.
        let t = table(&[100.0, 10.0]);
        let flows = vec![FlowSpec::new(vec![0, 1], 1000.0), FlowSpec::new(vec![1], 1000.0)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Classic max-min example: r0 cap 10 shared by A,B; r1 cap 100
        // used by B only; B should get more once A is frozen at 5.
        let t = table(&[10.0, 100.0]);
        let flows = vec![FlowSpec::new(vec![0], 5.0), FlowSpec::new(vec![0, 1], 1000.0)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9, "r0 still splits fairly: {rates:?}");
    }

    #[test]
    fn zero_capacity_resource_starves_flow() {
        let t = table(&[0.0, 10.0]);
        let flows = vec![FlowSpec::new(vec![0], 5.0), FlowSpec::new(vec![1], 5.0)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_flow_runs_at_cap() {
        let t = table(&[1.0]);
        let rates = solve_maxmin(&t, &[FlowSpec::new(Vec::new(), 7.0)]).unwrap();
        assert!((rates[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_out_of_range_resource() {
        let t = table(&[1.0]);
        assert!(solve_maxmin(&t, &[FlowSpec::new(vec![3], 1.0)]).is_err());
    }

    #[test]
    fn rejects_non_finite_cap() {
        let t = table(&[1.0]);
        assert!(solve_maxmin(&t, &[FlowSpec::new(vec![0], f64::INFINITY)]).is_err());
        assert!(solve_maxmin(&t, &[FlowSpec::new(vec![0], f64::NAN)]).is_err());
    }

    #[test]
    fn no_resource_oversubscribed() {
        // Random-ish mesh of flows; verify feasibility invariant.
        let t = table(&[7.0, 3.0, 11.0]);
        let flows = vec![
            FlowSpec::new(vec![0, 1], 10.0),
            FlowSpec::new(vec![1, 2], 10.0),
            FlowSpec::new(vec![0, 2], 10.0),
            FlowSpec::new(vec![2], 2.0),
        ];
        let rates = solve_maxmin(&t, &flows).unwrap();
        let mut used = [0.0; 3];
        for (f, &rate) in flows.iter().zip(&rates) {
            for &r in &f.route {
                used[r] += rate;
            }
        }
        for (r, &u) in used.iter().enumerate() {
            assert!(u <= t.get(r).capacity * (1.0 + 1e-9), "resource {r} oversubscribed: {u}");
        }
    }

    #[test]
    fn hairpin_route_counts_twice() {
        let t = table(&[10.0]);
        let rates = solve_maxmin(&t, &[FlowSpec::new(vec![0, 0], 100.0)]).unwrap();
        assert!((rates[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_cap_flow_survives_next_to_a_fast_controller() {
        // Regression: the old absolute epsilon (max cap * 1e-12) silently
        // zero-rated any flow slower than ~10 mB/s on a 10 GB/s table.
        let t = table(&[10.0e9]);
        let flows = vec![FlowSpec::new(vec![0], 1.0), FlowSpec::new(vec![0], 20.0e9)];
        let rates = solve_maxmin(&t, &flows).unwrap();
        assert!((rates[0] - 1.0).abs() < 1e-6, "1 B/s flow zero-rated: {rates:?}");
        assert!((rates[1] - (10.0e9 - 1.0)).abs() < 1.0, "fast flow takes the rest: {rates:?}");
    }

    #[test]
    fn attribution_names_the_saturated_resource() {
        // Two uncapped-ish flows pinned by the shared controller.
        let t = table(&[6.4e9]);
        let flows = vec![FlowSpec::new(vec![0], 3.7e9), FlowSpec::new(vec![0], 3.7e9)];
        let (rates, attr) = solve_maxmin_attributed(&t, &flows).unwrap();
        assert!((rates[0] - 3.2e9).abs() < 1.0);
        assert_eq!(attr, vec![Bottleneck::Resource(0), Bottleneck::Resource(0)]);
    }

    #[test]
    fn attribution_reports_flow_cap_when_uncontended() {
        let t = table(&[10.0e9]);
        let flows = vec![FlowSpec::new(vec![0], 3.7e9)];
        let (rates, attr) = solve_maxmin_attributed(&t, &flows).unwrap();
        assert!((rates[0] - 3.7e9).abs() < 1.0);
        assert_eq!(attr, vec![Bottleneck::FlowCap]);
    }

    #[test]
    fn attribution_prefers_the_most_contended_resource() {
        // Four flows each cross a private controller (r0..r3, cap 10)
        // and all share r4 (cap 4): every flow freezes at 1.0 because of
        // r4, the resource with the highest unfixed-flow count.
        let t = table(&[10.0, 10.0, 10.0, 10.0, 4.0]);
        let flows: Vec<FlowSpec> = (0..4).map(|r| FlowSpec::new(vec![r, 4], 100.0)).collect();
        let (rates, attr) = solve_maxmin_attributed(&t, &flows).unwrap();
        for (&rate, &b) in rates.iter().zip(&attr) {
            assert!((rate - 1.0).abs() < 1e-9, "{rates:?}");
            assert_eq!(b, Bottleneck::Resource(4), "{attr:?}");
        }
    }

    #[test]
    fn attribution_covers_zero_cap_flows() {
        let t = table(&[10.0]);
        let flows = vec![FlowSpec::new(vec![0], 0.0), FlowSpec::new(vec![0], 100.0)];
        let (rates, attr) = solve_maxmin_attributed(&t, &flows).unwrap();
        assert_eq!(rates[0], 0.0);
        assert_eq!(attr[0], Bottleneck::FlowCap);
        assert!((rates[1] - 10.0).abs() < 1e-9);
        assert_eq!(attr[1], Bottleneck::Resource(0));
    }

    #[test]
    fn attributed_rates_match_plain_rates_exactly() {
        let t = table(&[7.0, 3.0, 11.0]);
        let flows = vec![
            FlowSpec::new(vec![0, 1], 10.0),
            FlowSpec::new(vec![1, 2], 10.0),
            FlowSpec::new(vec![0, 2], 10.0),
            FlowSpec::new(vec![2], 2.0),
            FlowSpec::new(vec![0, 0], 100.0),
        ];
        let plain = solve_maxmin(&t, &flows).unwrap();
        let (attributed, _) = solve_maxmin_attributed(&t, &flows).unwrap();
        // Bit-identical, not approximately equal: both paths run the same
        // arithmetic, so tracing can never perturb a simulation.
        assert_eq!(plain, attributed);
    }
}
