//! # corescope-machine
//!
//! A fluid-flow discrete-event simulator of NUMA multi-core machines, built
//! to reproduce the behaviour of the 2006-era AMD Opteron systems studied in
//! *"Characterization of Scientific Workloads on Systems with Multi-Core
//! Processors"* (Alam et al., IISWC 2006).
//!
//! The simulator models a machine as a set of **sockets**, each containing
//! one or more **cores**, a **memory controller**, and **HyperTransport
//! links** to neighbouring sockets. Workloads are expressed as per-rank
//! [`Program`]s of operations (compute phases, sends, receives, barriers).
//! Every activity that moves bytes becomes a *flow* over a route of shared
//! resources; flow rates are solved with progressive-filling max-min
//! fairness, and the discrete-event [`Engine`] advances simulated time to
//! the next flow completion or timer.
//!
//! Three preset machines mirror Table 1 of the paper: [`systems::tiger`]
//! (2 × single-core Opteron 248), [`systems::dmz`] (2 × dual-core Opteron
//! 275) and [`systems::longs`] (8 × dual-core Opteron 865 on a 4×2
//! HyperTransport ladder).
//!
//! ```
//! use corescope_machine::{systems, Machine};
//!
//! let machine = Machine::new(systems::longs());
//! assert_eq!(machine.num_cores(), 16);
//! assert_eq!(machine.num_sockets(), 8);
//! // The ladder topology means up to 4 hops between distant sockets.
//! assert_eq!(machine.topology().diameter(), 4);
//! ```
//!
//! [`Program`]: crate::program::Program
//! [`Engine`]: crate::engine::Engine

pub mod cache;
pub mod engine;
pub mod error;
pub mod faults;
pub mod flow;
pub mod ids;
pub mod memory;
pub mod metrics;
pub mod params;
pub mod program;
pub mod recovery;
pub mod spec;
pub mod systems;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use engine::{Engine, Observed, RunReport};
pub use error::{Error, Result};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use flow::Bottleneck;
pub use ids::{CoreId, LinkId, NumaNodeId, RankId, SocketId};
pub use memory::MemoryLayout;
pub use metrics::{RankSpans, ResourceTimeline, RunMetrics};
pub use params::{CalibParams, ParamField};
pub use program::{ComputePhase, Op, Program};
pub use recovery::{young_daly_interval, CheckpointPolicy, CheckpointTarget, RetryPolicy};
pub use spec::{CacheSpec, CoherenceSpec, CoreSpec, LinkSpec, MachineSpec, MemorySpec};
pub use topology::Topology;
pub use trace::{RecoveryStamp, RunTrace, TraceConfig};
pub use traffic::{AccessPattern, TrafficProfile};

use std::fmt;

/// A fully-resolved simulated machine: spec plus derived topology/routing.
///
/// `Machine` is immutable once constructed; simulations borrow it.
///
/// ```
/// use corescope_machine::{systems, Machine};
/// let m = Machine::new(systems::dmz());
/// assert_eq!(m.num_cores(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    topology: Topology,
}

impl Machine {
    /// Builds a machine from a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation (use [`Machine::try_new`] to get
    /// a `Result` instead).
    pub fn new(spec: MachineSpec) -> Self {
        Self::try_new(spec).expect("invalid machine spec")
    }

    /// Builds a machine, returning an error for invalid specs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when the spec has no sockets, no
    /// cores, non-positive capacities, or a disconnected link graph.
    pub fn try_new(spec: MachineSpec) -> Result<Self> {
        spec.validate()?;
        let topology = Topology::from_spec(&spec)?;
        Ok(Self { spec, topology })
    }

    /// The machine's static specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The derived link topology and routing tables.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total number of cores in the machine. Cores live only on compute
    /// sockets; memory-only nodes contribute none.
    pub fn num_cores(&self) -> usize {
        self.spec.num_compute_sockets() * self.spec.cores_per_socket
    }

    /// Number of sockets (== number of NUMA nodes on these systems).
    pub fn num_sockets(&self) -> usize {
        self.spec.sockets.len()
    }

    /// Number of sockets that carry cores. Equal to [`num_sockets`]
    /// except on machines with trailing memory-only nodes.
    ///
    /// [`num_sockets`]: Machine::num_sockets
    pub fn num_compute_sockets(&self) -> usize {
        self.spec.num_compute_sockets()
    }

    /// The socket that owns a core.
    ///
    /// Cores are numbered socket-major: socket `s` owns cores
    /// `s * cores_per_socket .. (s + 1) * cores_per_socket`.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId::new(core.index() / self.spec.cores_per_socket)
    }

    /// The NUMA node local to a socket (1:1 on Opteron systems).
    pub fn node_of_socket(&self, socket: SocketId) -> NumaNodeId {
        NumaNodeId::new(socket.index())
    }

    /// The socket local to a NUMA node (1:1 on Opteron systems).
    pub fn socket_of_node(&self, node: NumaNodeId) -> SocketId {
        SocketId::new(node.index())
    }

    /// Iterator over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores()).map(CoreId::new)
    }

    /// Iterator over all socket ids.
    pub fn sockets(&self) -> impl Iterator<Item = SocketId> + '_ {
        (0..self.num_sockets()).map(SocketId::new)
    }

    /// Iterator over the sockets that carry cores.
    pub fn compute_sockets(&self) -> impl Iterator<Item = SocketId> + '_ {
        (0..self.num_compute_sockets()).map(SocketId::new)
    }

    /// Iterator over all NUMA node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NumaNodeId> + '_ {
        (0..self.num_sockets()).map(NumaNodeId::new)
    }

    /// The cores belonging to a socket, in id order. Empty for
    /// memory-only nodes.
    pub fn cores_of(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        let cps = if socket.index() < self.spec.num_compute_sockets() {
            self.spec.cores_per_socket
        } else {
            0
        };
        (socket.index() * self.spec.cores_per_socket
            ..socket.index() * self.spec.cores_per_socket + cps)
            .map(CoreId::new)
    }

    /// Uncontended DRAM access latency in seconds for a core reaching a
    /// NUMA node, including HyperTransport hops and the coherence probe.
    ///
    /// This is the latency that bounds a single core's achievable memory
    /// bandwidth through the Little's-law concurrency limit — the mechanism
    /// behind the paper's observation that the 8-socket Longs system
    /// achieves less than half the expected per-core STREAM bandwidth.
    /// Heterogeneous machines sum the actual per-link hop latencies
    /// along the route and use the target node's own idle latency;
    /// uniform machines keep the original closed form (bit-identical
    /// floats for the 2006 presets, whose probe term also sees
    /// `num_compute_sockets == num_sockets`).
    pub fn memory_latency(&self, core: CoreId, node: NumaNodeId) -> f64 {
        let src = self.socket_of(core);
        let dst = self.socket_of_node(node);
        let spec = &self.spec;
        let probe =
            spec.coherence.probe_latency(self.num_compute_sockets(), self.topology.diameter());
        if spec.is_uniform() {
            let hops = self.topology.hops(src, dst) as f64;
            return spec.memory.idle_latency + hops * spec.link.hop_latency + probe;
        }
        let mut latency = spec.memory_of(dst.index()).idle_latency;
        if let Ok(route) = self.topology.route(src, dst) {
            for link in route {
                latency += spec.link_of(self.topology.edge_of(link)).hop_latency;
            }
        }
        latency + probe
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} sockets x {} cores @ {:.1} GHz",
            self.spec.name,
            self.num_sockets(),
            self.spec.cores_per_socket,
            self.spec.core.frequency_hz / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_display_mentions_name() {
        let m = Machine::new(systems::dmz());
        let s = m.to_string();
        assert!(s.contains("dmz"), "display should contain machine name: {s}");
    }

    #[test]
    fn socket_major_core_numbering() {
        let m = Machine::new(systems::longs());
        assert_eq!(m.socket_of(CoreId::new(0)), SocketId::new(0));
        assert_eq!(m.socket_of(CoreId::new(1)), SocketId::new(0));
        assert_eq!(m.socket_of(CoreId::new(2)), SocketId::new(1));
        assert_eq!(m.socket_of(CoreId::new(15)), SocketId::new(7));
    }

    #[test]
    fn cores_of_socket_are_contiguous() {
        let m = Machine::new(systems::longs());
        let cores: Vec<_> = m.cores_of(SocketId::new(3)).collect();
        assert_eq!(cores, vec![CoreId::new(6), CoreId::new(7)]);
    }

    #[test]
    fn memory_only_node_has_no_cores() {
        let mut spec = systems::dmz();
        spec.memory_only_nodes = 1;
        let m = Machine::new(spec);
        assert_eq!(m.num_cores(), 2);
        assert_eq!(m.num_compute_sockets(), 1);
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.cores_of(SocketId::new(1)).count(), 0);
        assert_eq!(m.compute_sockets().collect::<Vec<_>>(), vec![SocketId::new(0)]);
        // A single compute socket pays no coherence probe, but reaching
        // the far memory node still pays the link hop.
        let local = m.memory_latency(CoreId::new(0), NumaNodeId::new(0));
        let far = m.memory_latency(CoreId::new(0), NumaNodeId::new(1));
        assert_eq!(local, m.spec().memory.idle_latency);
        assert_eq!(far, local + m.spec().link.hop_latency);
    }

    #[test]
    fn hetero_latency_sums_per_link_overrides() {
        let mut spec = systems::longs();
        // Make the first edge (0-1 rung) ten times slower.
        spec.edge_links = vec![(0, LinkSpec { bandwidth: 1e9, hop_latency: 550e-9 })];
        let m = Machine::new(spec);
        let uniform = Machine::new(systems::longs());
        let over = m.memory_latency(CoreId::new(0), NumaNodeId::new(1));
        let base = uniform.memory_latency(CoreId::new(0), NumaNodeId::new(1));
        assert!((over - base - (550e-9 - 55e-9)).abs() < 1e-12);
        // Routes not using edge 0 are unchanged.
        let same = m.memory_latency(CoreId::new(0), NumaNodeId::new(2));
        assert_eq!(same, uniform.memory_latency(CoreId::new(0), NumaNodeId::new(2)));
    }

    #[test]
    fn remote_latency_exceeds_local() {
        let m = Machine::new(systems::longs());
        let local = m.memory_latency(CoreId::new(0), NumaNodeId::new(0));
        let remote = m.memory_latency(CoreId::new(0), NumaNodeId::new(7));
        assert!(remote > local);
    }

    #[test]
    fn longs_probe_latency_exceeds_dmz() {
        let longs = Machine::new(systems::longs());
        let dmz = Machine::new(systems::dmz());
        let l = longs.memory_latency(CoreId::new(0), NumaNodeId::new(0));
        let d = dmz.memory_latency(CoreId::new(0), NumaNodeId::new(0));
        assert!(
            l > 1.5 * d,
            "8-socket coherence probe should dominate: longs {l:.2e} vs dmz {d:.2e}"
        );
    }
}
