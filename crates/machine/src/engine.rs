//! Fluid-flow discrete-event simulation engine.
//!
//! The engine executes one [`Program`] per rank against a [`Machine`].
//! Compute phases and messages become fluid flows over shared resources
//! (memory controllers and directed HyperTransport links); whenever the
//! active flow set changes, per-flow rates are re-solved with max-min
//! fairness ([`crate::flow::solve_maxmin`]) and completion events are
//! recomputed.

use crate::cache;
use crate::error::{Error, Result};
use crate::faults::{FaultKind, FaultPlan};
use crate::flow::{
    solve_maxmin, solve_maxmin_attributed, Bottleneck, FlowSpec, ResourceIndex, ResourceTable,
};
use crate::ids::{CoreId, LinkId, RankId, SocketId};
use crate::memory::MemoryLayout;
use crate::program::{ComputePhase, MessageCost, Op, Program};
use crate::recovery::{CheckpointPolicy, CheckpointTarget, RetryPolicy};
use crate::trace::{
    FaultStamp, OpSpan, RankState, RecoveryStamp, RunTrace, SolverInterval, SpanKind, TraceConfig,
};
use crate::traffic::{AccessPattern, TrafficProfile};
use crate::Machine;

pub use crate::metrics::{RunMetrics, RunReport};

use std::collections::HashMap;
use std::collections::VecDeque;

/// Where a rank runs and where its pages live.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlacement {
    /// The core the rank is pinned to.
    pub core: CoreId,
    /// Distribution of the rank's pages over NUMA nodes.
    pub layout: MemoryLayout,
}

impl RankPlacement {
    /// Creates a placement.
    pub fn new(core: CoreId, layout: MemoryLayout) -> Self {
        Self { core, layout }
    }
}

/// Simulation engine bound to one machine.
///
/// ```
/// use corescope_machine::{systems, Machine, Engine, Program, ComputePhase, TrafficProfile};
/// use corescope_machine::engine::RankPlacement;
/// use corescope_machine::{CoreId, MemoryLayout, NumaNodeId};
///
/// # fn main() -> Result<(), corescope_machine::Error> {
/// let machine = Machine::new(systems::dmz());
/// let engine = Engine::new(&machine);
/// let mut program = Program::new();
/// // 1 GB streamed from local memory: ~0.27 s at ~3.7 GB/s.
/// program.compute(ComputePhase::new("triad", 0.0, TrafficProfile::stream(1e9)));
/// let placement = RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(0)));
/// let report = engine.run(&[placement], &[program])?;
/// assert!(report.makespan > 0.2 && report.makespan < 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Engine<'m> {
    machine: &'m Machine,
    resources: ResourceTable,
    mc_index: Vec<ResourceIndex>,
    link_index: Vec<ResourceIndex>,
    /// Machine-wide coherence-probe fabric (all DRAM traffic shares it on
    /// multi-socket machines).
    probe_index: Option<ResourceIndex>,
    max_events: usize,
    time_budget: Option<f64>,
    zero_progress_limit: usize,
    /// Coordinated checkpoint/restart policy (see [`Engine::with_recovery`]).
    checkpoint: Option<CheckpointPolicy>,
    /// Transfer timeout/retry policy for failed links (see
    /// [`Engine::with_retry`]).
    retry: Option<RetryPolicy>,
}

/// Bytes below which a flow is considered drained.
const EPS_BYTES: f64 = 1e-6;
/// Timer comparison slack in seconds (one femtosecond).
const EPS_TIME: f64 = 1e-15;

impl<'m> Engine<'m> {
    /// Creates an engine with the machine's nominal resource capacities.
    pub fn new(machine: &'m Machine) -> Self {
        let mut resources = ResourceTable::new();
        let spec = machine.spec();
        let mc_index = machine
            .sockets()
            .map(|s| resources.add(format!("mc:{s}"), spec.memory_of(s.index()).controller_bw))
            .collect();
        let topo = machine.topology();
        let link_index = (0..topo.num_links())
            .map(|l| {
                let (a, b) = topo.link_endpoints(LinkId::new(l));
                let bw = spec.link_of(topo.edge_of(LinkId::new(l))).bandwidth;
                resources.add(format!("link:{a}->{b}"), bw)
            })
            .collect();
        let probe_index = (machine.num_compute_sockets() > 1)
            .then(|| resources.add("coherence-probe", spec.coherence.probe_capacity));
        Self {
            machine,
            resources,
            mc_index,
            link_index,
            probe_index,
            max_events: 20_000_000,
            time_budget: None,
            zero_progress_limit: 50_000,
            checkpoint: None,
            retry: None,
        }
    }

    /// The machine this engine simulates.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Caps the number of discrete events per run (runaway guard).
    /// Exceeding it returns [`Error::EventBudgetExhausted`].
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Caps simulated time: the run fails with
    /// [`Error::TimeBudgetExhausted`] as soon as the next event would pass
    /// `seconds`. This is the watchdog to reach for when a degraded run
    /// must finish "soon or not at all" — unlike the event budget it is
    /// independent of how finely the workload chops its traffic.
    pub fn with_time_budget(mut self, seconds: f64) -> Self {
        self.time_budget = Some(seconds);
        self
    }

    /// Caps consecutive zero-time-advance iterations (livelock guard);
    /// exceeding it returns [`Error::RankStalled`]. The default (50 000)
    /// is far above anything a legitimate same-timestamp cascade (barrier
    /// releases, eager send chains) produces.
    pub fn with_zero_progress_limit(mut self, iterations: usize) -> Self {
        self.zero_progress_limit = iterations;
        self
    }

    /// Enables coordinated checkpoint/restart: every `policy.interval`
    /// seconds each live rank streams `policy.bytes_per_rank` through the
    /// memory system (real contending flows), and a
    /// [`FaultKind::RankKill`] rolls the whole job back to the last
    /// completed checkpoint instead of failing the run. Without a policy a
    /// kill returns [`Error::RankKilled`].
    pub fn with_recovery(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Enables transport timeout/retry: transfers in flight across a link
    /// severed by [`FaultKind::LinkFail`] are declared lost after
    /// `policy.detection_timeout` and retransmitted with exponential
    /// backoff instead of starving the run into [`Error::RankStalled`].
    /// Exceeding `policy.max_retries` returns [`Error::RetriesExhausted`].
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Degrades (or restores) a directed link's capacity — failure
    /// injection for robustness tests.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: f64) {
        self.resources.set_capacity(self.link_index[link.index()], capacity);
    }

    /// Degrades (or restores) a socket's memory-controller capacity.
    pub fn set_controller_capacity(&mut self, socket: SocketId, capacity: f64) {
        self.resources.set_capacity(self.mc_index[socket.index()], capacity);
    }

    /// Runs one simulation.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidSpec`] — placement/program count mismatch.
    /// * [`Error::CoreOutOfRange`] / [`Error::NodeOutOfRange`] /
    ///   [`Error::CoreOversubscribed`] — bad placements.
    /// * [`Error::Deadlock`] — blocked ranks with no pending events.
    /// * [`Error::ZeroCapacityRoute`] — new traffic routed through a
    ///   resource currently at zero capacity.
    /// * [`Error::EventBudgetExhausted`] / [`Error::TimeBudgetExhausted`] /
    ///   [`Error::RankStalled`] — watchdogs (see [`Engine::with_max_events`],
    ///   [`Engine::with_time_budget`], [`Engine::with_zero_progress_limit`]).
    pub fn run(&self, placements: &[RankPlacement], programs: &[Program]) -> Result<RunReport> {
        self.run_with_faults(placements, programs, &FaultPlan::new())
    }

    /// Runs one simulation under a schedule of mid-run faults.
    ///
    /// Faults fire as first-class discrete events: when one fires, active
    /// flow rates are re-solved under the new capacities and pending
    /// completion events are recomputed. A restore scheduled after a
    /// total outage wakes the flows it starved. Configurations that can
    /// never finish — a rank stalled with no resume, traffic starved by a
    /// zero-capacity resource with no restore — return typed errors, never
    /// hang.
    ///
    /// ```
    /// use corescope_machine::{systems, Machine, Engine, Program, ComputePhase, TrafficProfile};
    /// use corescope_machine::engine::RankPlacement;
    /// use corescope_machine::{CoreId, FaultPlan, MemoryLayout, NumaNodeId, SocketId};
    ///
    /// # fn main() -> Result<(), corescope_machine::Error> {
    /// let machine = Machine::new(systems::dmz());
    /// let engine = Engine::new(&machine);
    /// let mut program = Program::new();
    /// program.compute(ComputePhase::new("triad", 0.0, TrafficProfile::stream(1e9)));
    /// let placement = RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(0)));
    /// // Throttle the local memory controller to half speed from t=0.1s on.
    /// let plan = FaultPlan::new().controller_throttle(0.1, SocketId::new(0), 0.5);
    /// let healthy = engine.run(&[placement.clone()], std::slice::from_ref(&program))?;
    /// let faulty = engine.run_with_faults(&[placement], &[program], &plan)?;
    /// assert!(faulty.makespan > healthy.makespan);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Everything [`Engine::run`] can return, plus [`Error::InvalidSpec`]
    /// when the plan fails [`FaultPlan::validate`].
    pub fn run_with_faults(
        &self,
        placements: &[RankPlacement],
        programs: &[Program],
        plan: &FaultPlan,
    ) -> Result<RunReport> {
        self.observe(placements, programs, plan, TraceConfig::off()).result
    }

    /// Runs one simulation and returns everything observed along the way,
    /// even when the run ends in a typed error: partial metrics, the end
    /// time, and (with [`TraceConfig::on`]) a full [`RunTrace`].
    ///
    /// With tracing off this is exactly [`Engine::run_with_faults`] plus
    /// the partial-outcome fields; with tracing on, rates and the
    /// resulting [`RunReport`] are still bit-identical — attribution is
    /// recorded on the side, never fed back into the solver.
    pub fn observe(
        &self,
        placements: &[RankPlacement],
        programs: &[Program],
        plan: &FaultPlan,
        trace: TraceConfig,
    ) -> Observed {
        match self.prepare(placements, programs, plan) {
            Ok(faults) => Sim::new(self, placements, programs, faults, trace).run(),
            Err(e) => Observed {
                result: Err(e),
                metrics: RunMetrics::new(programs.len(), self.resources.len()),
                end_time: 0.0,
                trace: None,
            },
        }
    }

    /// Validates placements and the fault plan, lowering the plan to the
    /// engine's index space.
    fn prepare(
        &self,
        placements: &[RankPlacement],
        programs: &[Program],
        plan: &FaultPlan,
    ) -> Result<Vec<ScheduledFault>> {
        if placements.len() != programs.len() {
            return Err(Error::InvalidSpec(format!(
                "{} placements for {} programs",
                placements.len(),
                programs.len()
            )));
        }
        let num_cores = self.machine.num_cores();
        let num_nodes = self.machine.num_sockets();
        let mut seen = vec![false; num_cores];
        for p in placements {
            if p.core.index() >= num_cores {
                return Err(Error::CoreOutOfRange { core: p.core.index(), num_cores });
            }
            if seen[p.core.index()] {
                return Err(Error::CoreOversubscribed { core: p.core.index() });
            }
            seen[p.core.index()] = true;
            p.layout.check_nodes(num_nodes)?;
        }
        if let Some(policy) = &self.checkpoint {
            policy.validate(self.machine)?;
        }
        if let Some(policy) = &self.retry {
            policy.validate()?;
        }
        plan.validate(self.machine, programs.len())?;
        plan.events()
            .iter()
            .map(|e| {
                Ok(ScheduledFault { at: e.at, kind: e.kind, fault: self.resolve_fault(e.kind)? })
            })
            .collect()
    }

    /// Lowers a [`FaultKind`] to a resource index and absolute capacity.
    ///
    /// Capacity factors are relative to *nominal* capacity: whatever this
    /// engine was configured with before the run (including pre-run
    /// [`Engine::set_link_capacity`] overrides), so restores and repeated
    /// degrades never compound.
    fn resolve_fault(&self, kind: FaultKind) -> Result<ResolvedFault> {
        let scaled = |index: ResourceIndex, factor: f64| ResolvedFault::SetCapacity {
            index,
            capacity: self.resources.get(index).capacity * factor,
        };
        let probe = || {
            self.probe_index.ok_or_else(|| {
                Error::InvalidSpec("probe fault on a machine without a probe fabric".to_string())
            })
        };
        Ok(match kind {
            FaultKind::LinkDegrade { link, factor } => {
                scaled(self.link_index[link.index()], factor)
            }
            FaultKind::LinkRestore { link } => scaled(self.link_index[link.index()], 1.0),
            FaultKind::ControllerThrottle { socket, factor } => {
                scaled(self.mc_index[socket.index()], factor)
            }
            FaultKind::ControllerRestore { socket } => scaled(self.mc_index[socket.index()], 1.0),
            FaultKind::ProbeBrownout { factor } => scaled(probe()?, factor),
            FaultKind::ProbeRestore => scaled(probe()?, 1.0),
            FaultKind::RankStall { rank } => ResolvedFault::Stall(rank.index()),
            FaultKind::RankResume { rank } => ResolvedFault::Resume(rank.index()),
            FaultKind::RankKill { rank } => ResolvedFault::Kill(rank.index()),
            FaultKind::LinkFail { link } => {
                ResolvedFault::FailLink { index: self.link_index[link.index()] }
            }
        })
    }
}

/// Everything one run produced, even when it ended in a typed error.
///
/// [`Engine::run`]'s `Result<RunReport>` throws the partial state of a
/// failed run away; `Observed` keeps it. `metrics` and `end_time` are
/// always populated (partially-drained flows are charged for the bytes
/// they actually moved), and `trace` is present when the run was started
/// with [`TraceConfig::on`].
#[derive(Debug)]
pub struct Observed {
    /// The run outcome, exactly as [`Engine::run_with_faults`] returns it.
    pub result: Result<RunReport>,
    /// Metrics accumulated up to the point the run ended — identical to
    /// `result`'s copy on success, partial on error.
    pub metrics: RunMetrics,
    /// Engine time when the run ended (successfully or not).
    pub end_time: f64,
    /// The time-resolved trace, when tracing was enabled.
    pub trace: Option<RunTrace>,
}

/// A fault lowered to the engine's resource/rank index space, keeping its
/// plan-level [`FaultKind`] so traced runs can stamp what fired.
#[derive(Debug, Clone, Copy)]
struct ScheduledFault {
    at: f64,
    kind: FaultKind,
    fault: ResolvedFault,
}

/// A fault lowered to the engine's resource/rank index space.
#[derive(Debug, Clone, Copy)]
enum ResolvedFault {
    SetCapacity {
        index: ResourceIndex,
        capacity: f64,
    },
    Stall(usize),
    Resume(usize),
    /// Terminal loss of a rank: recover from the last checkpoint, or fail
    /// the run with [`Error::RankKilled`] when no policy is active.
    Kill(usize),
    /// Permanent (until restored) link severance: capacity drops to zero
    /// *and* in-flight transfers on the link are lost, not just slowed.
    FailLink {
        index: ResourceIndex,
    },
}

/// An op span still in progress on one rank (trace-only state).
#[derive(Debug, Clone)]
struct OpenSpan {
    kind: SpanKind,
    label: &'static str,
    t0: f64,
    attributed: Vec<(Bottleneck, f64)>,
}

/// All per-run trace state, boxed behind an `Option` so an untraced run
/// carries one `None` and allocates nothing.
#[derive(Debug)]
struct TraceState {
    intervals: Vec<SolverInterval>,
    spans: Vec<OpSpan>,
    open: Vec<Option<OpenSpan>>,
    /// Bottleneck attribution per flow slot, refreshed at every rate
    /// solve (indexed like `Sim::flows`).
    flow_bottleneck: Vec<Bottleneck>,
    faults: Vec<FaultStamp>,
    recoveries: Vec<RecoveryStamp>,
}

/// Maps engine statuses to their trace-level rank states.
fn rank_states(status: &[Status]) -> Vec<RankState> {
    status
        .iter()
        .map(|s| match *s {
            Status::Ready => RankState::Ready,
            Status::Computing { .. } => RankState::Computing,
            Status::Waiting { .. } => RankState::Waiting,
            Status::SendBlocked { .. } => RankState::SendBlocked,
            Status::RecvBlocked => RankState::RecvBlocked,
            Status::BarrierBlocked => RankState::BarrierBlocked,
            Status::Done => RankState::Done,
        })
        .collect()
}

/// Accumulates `dt` seconds of bottleneck `b` onto `rank`'s open span.
fn attribute(open: &mut [Option<OpenSpan>], rank: usize, b: Bottleneck, dt: f64) {
    let Some(span) = open.get_mut(rank).and_then(Option::as_mut) else { return };
    if let Some(slot) = span.attributed.iter_mut().find(|(have, _)| *have == b) {
        slot.1 += dt;
    } else {
        span.attributed.push((b, dt));
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    Computing {
        cpu_end: f64,
        pending_flows: usize,
    },
    /// Eager sender busy until `until`, or a `Delay` op.
    Waiting {
        until: f64,
    },
    /// Rendezvous sender blocked on a transfer.
    SendBlocked {
        transfer: usize,
    },
    RecvBlocked,
    BarrierBlocked,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TransferState {
    /// Send posted, waiting for the matching receive.
    WaitingRecv,
    /// Both sides posted; the flow starts at the stored time.
    Starting { at: f64 },
    /// Transfer in flight as flow `flow`.
    Flowing { flow: usize },
    /// Delivered.
    Done,
}

#[derive(Debug, Clone)]
struct Transfer {
    src: usize,
    dst: usize,
    bytes: f64,
    cost: MessageCost,
    send_post: f64,
    state: TransferState,
    /// Retransmissions already spent on this transfer (see
    /// [`RetryPolicy`]).
    attempts: usize,
}

#[derive(Debug, Clone, Copy)]
enum FlowOwner {
    /// A compute phase's DRAM traffic for rank `.0`.
    Phase(usize),
    /// Transfer `.0`'s payload.
    Transfer(usize),
    /// Rank `.0`'s share of a coordinated checkpoint write.
    Checkpoint(usize),
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    owner: FlowOwner,
    spec: FlowSpec,
    initial: f64,
    remaining: f64,
    rate: f64,
}

/// A consistent global cut of application and channel state, captured at
/// every checkpoint completion (plus an implicit one at `t = 0`). Rolling
/// back to it restores everything a replay needs; environment state —
/// resource capacities, the fault cursor, accumulated metrics and trace —
/// deliberately stays live, because the environment does not roll back
/// when an application restarts.
#[derive(Debug, Clone)]
struct SimSnapshot {
    /// Simulated time the cut was taken at.
    at: f64,
    pc: Vec<usize>,
    status: Vec<Status>,
    finish: Vec<f64>,
    flows: Vec<Option<ActiveFlow>>,
    live_flows: usize,
    transfers: Vec<Transfer>,
    starting_transfers: Vec<usize>,
    pending_sends: HashMap<(usize, usize, u64), VecDeque<usize>>,
    pending_recvs: HashMap<(usize, usize, u64), VecDeque<usize>>,
    barrier_arrived: usize,
}

struct Sim<'a, 'm> {
    engine: &'a Engine<'m>,
    placements: &'a [RankPlacement],
    programs: &'a [Program],
    /// The run's own capacity view: starts as a copy of the engine's
    /// nominal table and is mutated in place as scheduled faults fire.
    resources: ResourceTable,
    /// Time-sorted fault schedule; `next_fault` is the cursor into it.
    faults: Vec<ScheduledFault>,
    next_fault: usize,
    /// Ranks frozen by an unresumed [`FaultKind::RankStall`]. A stalled
    /// rank finishes its current operation but dispatches nothing.
    stalled: Vec<bool>,
    now: f64,
    pc: Vec<usize>,
    status: Vec<Status>,
    finish: Vec<f64>,
    flows: Vec<Option<ActiveFlow>>,
    live_flows: usize,
    transfers: Vec<Transfer>,
    /// Transfers in the `Starting` state (the only ones with a timer), so
    /// the event scan does not walk the full transfer history.
    starting_transfers: Vec<usize>,
    /// FIFO of unmatched send transfer-indices per (src, dst, tag).
    pending_sends: HashMap<(usize, usize, u64), VecDeque<usize>>,
    /// FIFO of unmatched receives per (src, dst, tag).
    pending_recvs: HashMap<(usize, usize, u64), VecDeque<usize>>,
    barrier_arrived: usize,
    metrics: RunMetrics,
    rates_dirty: bool,
    /// `None` when tracing is off: the hot loop then skips every trace
    /// hook without allocating.
    trace: Option<Box<TraceState>>,
    /// Resources severed by [`FaultKind::LinkFail`] (as opposed to merely
    /// degraded to zero): transfers routed over these are lost and
    /// eligible for retry. Cleared by a restore.
    failed_resources: Vec<bool>,
    /// Last completed checkpoint (present iff a policy is active).
    snapshot: Option<Box<SimSnapshot>>,
    /// When the next coordinated checkpoint starts.
    next_ckpt_at: Option<f64>,
    /// Checkpoint flows still draining for the in-progress checkpoint.
    ckpt_flows_pending: usize,
}

impl<'a, 'm> Sim<'a, 'm> {
    fn new(
        engine: &'a Engine<'m>,
        placements: &'a [RankPlacement],
        programs: &'a [Program],
        faults: Vec<ScheduledFault>,
        trace: TraceConfig,
    ) -> Self {
        let n = programs.len();
        Self {
            engine,
            placements,
            programs,
            resources: engine.resources.clone(),
            faults,
            next_fault: 0,
            stalled: vec![false; n],
            now: 0.0,
            pc: vec![0; n],
            status: vec![Status::Ready; n],
            finish: vec![0.0; n],
            flows: Vec::new(),
            live_flows: 0,
            transfers: Vec::new(),
            starting_transfers: Vec::new(),
            pending_sends: HashMap::new(),
            pending_recvs: HashMap::new(),
            barrier_arrived: 0,
            metrics: RunMetrics::new(n, engine.resources.len()),
            rates_dirty: false,
            trace: trace.is_on().then(|| {
                Box::new(TraceState {
                    intervals: Vec::new(),
                    spans: Vec::new(),
                    open: vec![None; n],
                    flow_bottleneck: Vec::new(),
                    faults: Vec::new(),
                    recoveries: Vec::new(),
                })
            }),
            failed_resources: vec![false; engine.resources.len()],
            snapshot: None,
            next_ckpt_at: None,
            ckpt_flows_pending: 0,
        }
    }

    fn run(mut self) -> Observed {
        let outcome = self.run_loop();
        // Charge flows still in flight for the bytes they actually moved
        // — a run that ends in a typed error (fault kill, stall, budget)
        // must still account its partial traffic.
        for f in self.flows.iter().flatten() {
            let moved = (f.initial - f.remaining.max(0.0)).max(0.0);
            for &r in &f.spec.route {
                self.metrics.resource_bytes[r] += moved;
            }
        }
        for rank in 0..self.programs.len() {
            self.trace_close_span(rank);
        }
        let trace = self.trace.take().map(|t| {
            let table = &self.engine.resources;
            RunTrace {
                resource_names: (0..table.len()).map(|r| table.get(r).name.clone()).collect(),
                num_ranks: self.programs.len(),
                intervals: t.intervals,
                spans: t.spans,
                faults: t.faults,
                recoveries: t.recoveries,
                end_time: self.now,
            }
        });
        let metrics = self.metrics.clone();
        let result = outcome.map(|makespan| RunReport {
            makespan,
            rank_finish: self.finish,
            metrics: self.metrics,
        });
        Observed { result, metrics, end_time: self.now, trace }
    }

    fn run_loop(&mut self) -> Result<f64> {
        let n = self.programs.len();
        if let Some(policy) = &self.engine.checkpoint {
            // The t=0 state is the implicit first checkpoint: a kill before
            // the first completed checkpoint restarts the job from scratch.
            self.next_ckpt_at = Some(policy.interval);
            self.take_snapshot();
        }
        self.apply_due_faults()?;
        self.dispatch_all()?;
        self.resolve_rates()?;
        let mut zero_dt_iters = 0usize;

        while self.status.iter().any(|s| *s != Status::Done) {
            self.metrics.events += 1;
            if self.metrics.events > self.engine.max_events {
                return Err(Error::EventBudgetExhausted {
                    budget: self.engine.max_events,
                    at_time: self.now,
                });
            }

            if self.metrics.events.is_multiple_of(1000)
                && std::env::var_os("CORESCOPE_TRACE").is_some()
            {
                eprintln!(
                    "[trace] event {} t={:.9} live_flows={} statuses={:?} flows={:?}",
                    self.metrics.events,
                    self.now,
                    self.live_flows,
                    &self.status,
                    self.flows.iter().flatten().map(|f| (f.remaining, f.rate)).collect::<Vec<_>>()
                );
            }
            let Some(app_next) = self.next_event_time() else {
                // Deliberately checked before merging the checkpoint
                // timer: checkpointing a deadlocked application forever is
                // not progress, so deadlock detection stays app-only.
                return Err(self.no_progress_error());
            };
            let next = match self.next_ckpt_at {
                Some(ckpt) if ckpt < app_next => ckpt.max(self.now),
                _ => app_next,
            };
            if let Some(budget) = self.engine.time_budget {
                if next > budget + EPS_TIME {
                    return Err(Error::TimeBudgetExhausted { budget, next_event: next });
                }
            }
            let dt = (next - self.now).max(0.0);
            if dt > EPS_TIME {
                zero_dt_iters = 0;
            } else {
                zero_dt_iters += 1;
                if zero_dt_iters > self.engine.zero_progress_limit {
                    let rank = (0..n)
                        .find(|&r| self.status[r] != Status::Done)
                        .map(RankId::new)
                        .unwrap_or_else(|| RankId::new(0));
                    return Err(Error::RankStalled { rank, at_time: self.now, resource: None });
                }
            }
            if dt > 0.0 {
                self.trace_interval(next);
            }
            self.advance_flows(dt);
            self.now = next;

            self.apply_due_faults()?;
            self.maybe_start_checkpoint()?;
            self.process_flow_completions()?;
            self.process_timers()?;
            self.dispatch_all()?;
            if self.rates_dirty {
                self.resolve_rates()?;
            }
        }

        let makespan = self.finish.iter().copied().fold(0.0, f64::max);
        Ok(makespan)
    }

    /// Records the solver interval `[now, t1)` — constant rates — plus
    /// per-flow bottleneck attribution onto the owning ranks' open spans.
    /// No-op when tracing is off.
    fn trace_interval(&mut self, t1: f64) {
        let now = self.now;
        let Some(trace) = self.trace.as_deref_mut() else { return };
        let dt = t1 - now;
        let n = self.resources.len();
        let mut load = vec![0.0; n];
        let mut routed = vec![false; n];
        for f in self.flows.iter().flatten() {
            for &r in &f.spec.route {
                load[r] += f.rate;
                routed[r] = true;
            }
        }
        let utilization = (0..n)
            .map(|r| {
                let cap = self.resources.get(r).capacity;
                if cap > 0.0 {
                    (load[r] / cap).min(1.0)
                } else if routed[r] {
                    // A dead resource with traffic routed through it is
                    // the binding constraint: report it pinned.
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let rank_state = rank_states(&self.status);
        trace.intervals.push(SolverInterval { t0: now, t1, utilization, rank_state });

        // Attribute the interval to the open spans of the ranks each live
        // flow serves: a phase flow charges its rank; a transfer charges
        // the receiver, plus a rendezvous sender still blocked on it.
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            let b = trace.flow_bottleneck.get(slot).copied().unwrap_or(Bottleneck::FlowCap);
            match f.owner {
                FlowOwner::Phase(rank) => attribute(&mut trace.open, rank, b, dt),
                FlowOwner::Transfer(t) => {
                    let tr = &self.transfers[t];
                    attribute(&mut trace.open, tr.dst, b, dt);
                    if matches!(self.status[tr.src], Status::SendBlocked { transfer } if transfer == t)
                    {
                        attribute(&mut trace.open, tr.src, b, dt);
                    }
                }
                // Checkpoint traffic charges whatever op the owning rank
                // is inside — the checkpoint runs concurrently with it.
                FlowOwner::Checkpoint(rank) => attribute(&mut trace.open, rank, b, dt),
            }
        }
    }

    /// Closes `rank`'s open span at the current time, dropping
    /// zero-length spans with nothing attributed. No-op when tracing is
    /// off.
    fn trace_close_span(&mut self, rank: usize) {
        let now = self.now;
        let Some(trace) = self.trace.as_deref_mut() else { return };
        let Some(open) = trace.open.get_mut(rank).and_then(Option::take) else { return };
        if now - open.t0 > 0.0 || !open.attributed.is_empty() {
            trace.spans.push(OpSpan {
                rank,
                kind: open.kind,
                label: open.label,
                t0: open.t0,
                t1: now,
                attributed: open.attributed,
            });
        }
    }

    /// Opens a span for a freshly dispatched op (closing the previous op's
    /// span — ops on one rank are sequential). No-op when tracing is off.
    fn trace_open_span(&mut self, rank: usize, op: &Op) {
        if self.trace.is_none() {
            return;
        }
        self.trace_close_span(rank);
        let now = self.now;
        let Some(trace) = self.trace.as_deref_mut() else { return };
        let (kind, label) = match op {
            Op::Compute(phase) => (SpanKind::Compute, phase.label),
            Op::Delay(_) => (SpanKind::Delay, "delay"),
            Op::Send { .. } => (SpanKind::Send, "send"),
            Op::Recv { .. } => (SpanKind::Recv, "recv"),
            Op::Barrier => (SpanKind::Barrier, "barrier"),
        };
        trace.open[rank] = Some(OpenSpan { kind, label, t0: now, attributed: Vec::new() });
    }

    /// Fires every scheduled fault due at (or before) `now`.
    ///
    /// # Errors
    ///
    /// [`Error::RankKilled`] for a kill with no active checkpoint policy;
    /// [`Error::RetriesExhausted`] when a link failure wastes the last
    /// retry of an in-flight transfer.
    fn apply_due_faults(&mut self) -> Result<()> {
        while let Some(&ScheduledFault { at, kind, fault }) = self.faults.get(self.next_fault) {
            if at > self.now + EPS_TIME {
                break;
            }
            self.next_fault += 1;
            self.metrics.faults_applied += 1;
            if let Some(trace) = self.trace.as_deref_mut() {
                trace.faults.push(FaultStamp { scheduled: at, fired: self.now, kind });
            }
            match fault {
                ResolvedFault::SetCapacity { index, capacity } => {
                    self.resources.set_capacity(index, capacity);
                    if capacity > 0.0 {
                        // A restore heals a severed link: new transfers
                        // route over it again.
                        self.failed_resources[index] = false;
                    }
                    self.rates_dirty = true;
                }
                ResolvedFault::Stall(rank) => self.stalled[rank] = true,
                ResolvedFault::Resume(rank) => self.stalled[rank] = false,
                ResolvedFault::Kill(rank) => {
                    if self.status[rank] == Status::Done {
                        // Killing a rank that already finished loses
                        // nothing: its results are out.
                        continue;
                    }
                    if self.engine.checkpoint.is_some() {
                        self.recover_from_kill(rank);
                    } else {
                        return Err(Error::RankKilled {
                            rank: RankId::new(rank),
                            at_time: self.now,
                        });
                    }
                }
                ResolvedFault::FailLink { index } => {
                    self.resources.set_capacity(index, 0.0);
                    self.failed_resources[index] = true;
                    self.rates_dirty = true;
                    self.detect_lost_transfers(index)?;
                }
            }
        }
        Ok(())
    }

    /// Diagnoses why the simulation has no next event, most specific
    /// cause first: traffic starved by a dead resource, then a frozen
    /// rank, then a plain message deadlock.
    fn no_progress_error(&self) -> Error {
        for f in self.flows.iter().flatten() {
            if f.rate > 0.0 {
                continue;
            }
            if let Some(&r) = f.spec.route.iter().find(|&&r| self.resources.get(r).capacity <= 0.0)
            {
                let rank = match f.owner {
                    FlowOwner::Phase(rank) => rank,
                    FlowOwner::Transfer(t) => self.transfers[t].src,
                    FlowOwner::Checkpoint(rank) => rank,
                };
                return Error::RankStalled {
                    rank: RankId::new(rank),
                    at_time: self.now,
                    resource: Some(self.resources.get(r).name.clone()),
                };
            }
        }
        if let Some(rank) =
            (0..self.status.len()).find(|&r| self.stalled[r] && self.status[r] != Status::Done)
        {
            return Error::RankStalled {
                rank: RankId::new(rank),
                at_time: self.now,
                resource: None,
            };
        }
        let blocked: Vec<RankId> = (0..self.status.len())
            .filter(|&r| self.status[r] != Status::Done)
            .map(RankId::new)
            .collect();
        Error::Deadlock { blocked, at_time: self.now }
    }

    /// Executes ops for every Ready, non-stalled rank until all are
    /// blocked, stalled, or done.
    fn dispatch_all(&mut self) -> Result<()> {
        loop {
            let Some(rank) = (0..self.programs.len())
                .find(|&r| self.status[r] == Status::Ready && !self.stalled[r])
            else {
                return Ok(());
            };
            self.dispatch(rank)?;
        }
    }

    fn dispatch(&mut self, rank: usize) -> Result<()> {
        let ops = self.programs[rank].ops();
        if self.pc[rank] >= ops.len() {
            self.trace_close_span(rank);
            self.status[rank] = Status::Done;
            self.finish[rank] = self.now;
            return Ok(());
        }
        let op = ops[self.pc[rank]].clone();
        self.pc[rank] += 1;
        self.trace_open_span(rank, &op);
        match op {
            Op::Compute(phase) => self.start_phase(rank, &phase)?,
            Op::Delay(seconds) => {
                if seconds > 0.0 {
                    self.status[rank] = Status::Waiting { until: self.now + seconds };
                }
            }
            Op::Send { to, bytes, tag, cost } => self.start_send(rank, to, bytes, tag, cost)?,
            Op::Recv { from, tag } => self.start_recv(rank, from, tag)?,
            Op::Barrier => {
                self.status[rank] = Status::BarrierBlocked;
                self.barrier_arrived += 1;
                if self.barrier_arrived == self.programs.len() {
                    self.barrier_arrived = 0;
                    for s in &mut self.status {
                        if *s == Status::BarrierBlocked {
                            *s = Status::Ready;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn start_phase(&mut self, rank: usize, phase: &ComputePhase) -> Result<()> {
        let machine = self.engine.machine;
        let spec = machine.spec();
        let placement = &self.placements[rank];
        let core = placement.core;
        let src_socket = machine.socket_of(core);

        let cpu_time = if phase.flops > 0.0 {
            phase.flops / (spec.core.peak_flops() * phase.efficiency)
        } else {
            0.0
        };
        self.metrics.compute_time[rank] += cpu_time;

        // Average access latency over the phase's page distribution (the
        // rank's placement layout unless the phase pins its own).
        let layout = phase.layout.as_ref().unwrap_or(&placement.layout);
        let mut avg_latency = 0.0;
        for (node, frac) in layout.shares() {
            avg_latency += frac * machine.memory_latency(core, node);
        }
        if phase.traffic.pattern == AccessPattern::Lookup {
            // Dependent lookups miss the open DRAM row and walk the TLB;
            // the streaming latency above assumes a row-hit mix. On
            // tiered machines each node charges its own surcharge.
            if spec.is_uniform() {
                avg_latency += spec.memory.lookup_latency;
            } else {
                for (node, frac) in layout.shares() {
                    avg_latency += frac * spec.memory_of(node.index()).lookup_latency;
                }
            }
        }
        let demand = cache::dram_demand(&spec.cache, &phase.traffic, avg_latency);
        self.metrics.dram_bytes[rank] += demand.bytes;

        let mut pending = 0;
        if demand.bytes > EPS_BYTES {
            for (node, frac) in layout.shares() {
                let bytes = demand.bytes * frac;
                if bytes <= EPS_BYTES {
                    continue;
                }
                let mut route = vec![self.engine.mc_index[node.index()]];
                let dst_socket = machine.socket_of_node(node);
                for link in machine.topology().route(src_socket, dst_socket)? {
                    route.push(self.engine.link_index[link.index()]);
                }
                if let Some(probe) = self.engine.probe_index {
                    route.push(probe);
                }
                self.check_route(&route)?;
                self.add_flow(ActiveFlow {
                    owner: FlowOwner::Phase(rank),
                    spec: FlowSpec::new(route, demand.self_cap * frac),
                    initial: bytes,
                    remaining: bytes,
                    rate: 0.0,
                });
                pending += 1;
            }
        }

        if pending == 0 && cpu_time <= 0.0 {
            // Nothing to do: stay Ready (dispatch loop continues).
        } else {
            self.status[rank] =
                Status::Computing { cpu_end: self.now + cpu_time, pending_flows: pending };
        }
        Ok(())
    }

    fn start_send(
        &mut self,
        rank: usize,
        to: RankId,
        bytes: f64,
        tag: u64,
        cost: MessageCost,
    ) -> Result<()> {
        let dst = to.index();
        if dst >= self.programs.len() {
            return Err(Error::InvalidSpec(format!("rank {rank} sends to nonexistent rank {dst}")));
        }
        self.metrics.messages_sent[rank] += 1;
        self.metrics.bytes_sent[rank] += bytes;

        let idx = self.transfers.len();
        self.transfers.push(Transfer {
            src: rank,
            dst,
            bytes,
            cost,
            send_post: self.now,
            state: TransferState::WaitingRecv,
            attempts: 0,
        });

        // Match an already-posted receive, if any.
        let key = (rank, dst, tag);
        let matched = self.pending_recvs.get_mut(&key).and_then(|q| q.pop_front()).is_some();
        if matched {
            let at = (self.now + cost.setup).max(self.now);
            self.transfers[idx].state = TransferState::Starting { at };
            self.starting_transfers.push(idx);
        } else {
            self.pending_sends.entry(key).or_default().push_back(idx);
        }

        if cost.rendezvous {
            self.status[rank] = Status::SendBlocked { transfer: idx };
        } else if cost.sender_busy > 0.0 {
            self.status[rank] = Status::Waiting { until: self.now + cost.sender_busy };
        }
        // else: sender continues immediately (stays Ready).
        Ok(())
    }

    fn start_recv(&mut self, rank: usize, from: RankId, tag: u64) -> Result<()> {
        let src = from.index();
        if src >= self.programs.len() {
            return Err(Error::InvalidSpec(format!(
                "rank {rank} receives from nonexistent rank {src}"
            )));
        }
        let key = (src, rank, tag);
        let send = self.pending_sends.get_mut(&key).and_then(|q| q.pop_front());
        match send {
            Some(t) => {
                let begin =
                    (self.transfers[t].send_post + self.transfers[t].cost.setup).max(self.now);
                self.transfers[t].state = TransferState::Starting { at: begin };
                self.status[rank] = Status::RecvBlocked;
                // Start immediately if the start time has already passed.
                if begin <= self.now + EPS_TIME {
                    self.start_transfer_flow(t)?;
                } else {
                    self.starting_transfers.push(t);
                }
            }
            None => {
                self.pending_recvs.entry(key).or_default().push_back(rank);
                self.status[rank] = Status::RecvBlocked;
            }
        }
        Ok(())
    }

    /// Moves a transfer from `Starting` to `Flowing` (or completes it for
    /// empty payloads).
    fn start_transfer_flow(&mut self, t: usize) -> Result<()> {
        let machine = self.engine.machine;
        let (src, dst, bytes, cap) = {
            let tr = &self.transfers[t];
            (tr.src, tr.dst, tr.bytes, tr.cost.cap)
        };
        if bytes <= EPS_BYTES {
            self.complete_transfer(t)?;
            return Ok(());
        }
        let s_src = machine.socket_of(self.placements[src].core);
        let s_dst = machine.socket_of(self.placements[dst].core);
        let mut route = vec![self.engine.mc_index[s_src.index()]];
        for link in machine.topology().route(s_src, s_dst)? {
            route.push(self.engine.link_index[link.index()]);
        }
        route.push(self.engine.mc_index[s_dst.index()]);
        if let Some(probe) = self.engine.probe_index {
            // Shared-memory copies are coherent traffic: they probe the
            // fabric like any other memory access.
            route.push(probe);
        }
        // A transfer asked to start over a severed link goes back to the
        // retry queue instead of erroring — the sender cannot know the
        // path is down until its failure detector fires.
        if let Some(&dead) = route.iter().find(|&&r| self.resources.get(r).capacity <= 0.0) {
            if self.failed_resources[dead] {
                if let Some(retry) = self.engine.retry.clone() {
                    return self.schedule_retry(t, &retry);
                }
            }
            return Err(Error::ZeroCapacityRoute {
                resource: self.resources.get(dead).name.clone(),
            });
        }
        let flow = self.add_flow(ActiveFlow {
            owner: FlowOwner::Transfer(t),
            spec: FlowSpec::new(route, cap.min(1e12)),
            initial: bytes,
            remaining: bytes,
            rate: 0.0,
        });
        self.transfers[t].state = TransferState::Flowing { flow };
        Ok(())
    }

    fn complete_transfer(&mut self, t: usize) -> Result<()> {
        let (src, dst, rendezvous) = {
            let tr = &mut self.transfers[t];
            tr.state = TransferState::Done;
            (tr.src, tr.dst, tr.cost.rendezvous)
        };
        // Receiver was blocked on this delivery.
        debug_assert_eq!(self.status[dst], Status::RecvBlocked);
        self.status[dst] = Status::Ready;
        if rendezvous {
            if let Status::SendBlocked { transfer } = self.status[src] {
                if transfer == t {
                    self.status[src] = Status::Ready;
                }
            }
        }
        Ok(())
    }

    fn add_flow(&mut self, flow: ActiveFlow) -> usize {
        self.rates_dirty = true;
        self.live_flows += 1;
        if let Some(slot) = self.flows.iter().position(Option::is_none) {
            self.flows[slot] = Some(flow);
            slot
        } else {
            self.flows.push(Some(flow));
            self.flows.len() - 1
        }
    }

    fn check_route(&self, route: &[ResourceIndex]) -> Result<()> {
        for &r in route {
            let res = self.resources.get(r);
            if res.capacity <= 0.0 {
                return Err(Error::ZeroCapacityRoute { resource: res.name.clone() });
            }
        }
        Ok(())
    }

    fn resolve_rates(&mut self) -> Result<()> {
        self.rates_dirty = false;
        let mut index = Vec::with_capacity(self.live_flows);
        let mut specs = Vec::with_capacity(self.live_flows);
        for (i, f) in self.flows.iter().enumerate() {
            if let Some(f) = f {
                index.push(i);
                specs.push(f.spec.clone());
            }
        }
        // The traced path uses the attributed solver; both go through the
        // same progressive-filling arithmetic, so the rates are
        // bit-identical and tracing cannot perturb the simulation.
        let rates = if let Some(trace) = self.trace.as_deref_mut() {
            let (rates, attribution) = solve_maxmin_attributed(&self.resources, &specs)?;
            trace.flow_bottleneck.clear();
            trace.flow_bottleneck.resize(self.flows.len(), Bottleneck::FlowCap);
            for (&slot, &b) in index.iter().zip(attribution.iter()) {
                trace.flow_bottleneck[slot] = b;
            }
            rates
        } else {
            solve_maxmin(&self.resources, &specs)?
        };
        for (slot, rate) in index.into_iter().zip(rates) {
            // `index` was collected from occupied slots above and nothing
            // vacates `self.flows` in between, so every slot is still live.
            let Some(f) = self.flows[slot].as_mut() else {
                debug_assert!(false, "rate solved for a vacated flow slot");
                continue;
            };
            f.rate = rate;
        }
        Ok(())
    }

    fn next_event_time(&self) -> Option<f64> {
        let mut next = f64::INFINITY;
        if let Some(f) = self.faults.get(self.next_fault) {
            next = next.min(f.at.max(self.now));
        }
        for f in self.flows.iter().flatten() {
            if f.rate > 0.0 {
                next = next.min(self.now + f.remaining / f.rate);
            }
        }
        for s in &self.status {
            match *s {
                Status::Computing { cpu_end, pending_flows }
                    if pending_flows == 0 || cpu_end > self.now =>
                {
                    next = next.min(cpu_end.max(self.now));
                }
                Status::Waiting { until } => next = next.min(until),
                _ => {}
            }
        }
        for &t in &self.starting_transfers {
            if let TransferState::Starting { at } = self.transfers[t].state {
                next = next.min(at.max(self.now));
            }
        }
        next.is_finite().then_some(next.max(self.now))
    }

    fn advance_flows(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        for f in self.flows.iter_mut().flatten() {
            f.remaining -= f.rate * dt;
        }
    }

    /// A flow counts as drained when its remainder is negligible relative
    /// to its initial size, or when draining it cannot advance the f64
    /// clock (remaining/rate below the ulp of `now`) — otherwise large
    /// simulations stall on femtosecond residues.
    fn flow_done(&self, f: &ActiveFlow) -> bool {
        let eps = EPS_BYTES.max(f.initial * 1e-12).max(f.rate * self.now.abs() * 1e-14);
        f.remaining <= eps
    }

    fn process_flow_completions(&mut self) -> Result<()> {
        for slot in 0..self.flows.len() {
            let done = match &self.flows[slot] {
                Some(f) => self.flow_done(f),
                None => false,
            };
            if !done {
                continue;
            }
            let Some(flow) = self.flows[slot].take() else { continue };
            self.live_flows -= 1;
            self.rates_dirty = true;
            // Charge what the flow actually moved, not its nominal size —
            // `remaining` holds a sub-epsilon residue at completion, and
            // the same expression charges interrupted flows correctly on
            // error exits (see `Sim::run`).
            let moved = (flow.initial - flow.remaining.max(0.0)).max(0.0);
            for &r in &flow.spec.route {
                self.metrics.resource_bytes[r] += moved;
            }
            match flow.owner {
                FlowOwner::Phase(rank) => {
                    if let Status::Computing { cpu_end, pending_flows } = self.status[rank] {
                        let pending = pending_flows - 1;
                        if pending == 0 && cpu_end <= self.now + EPS_TIME {
                            self.status[rank] = Status::Ready;
                        } else {
                            self.status[rank] =
                                Status::Computing { cpu_end, pending_flows: pending };
                        }
                    }
                }
                FlowOwner::Transfer(t) => {
                    self.complete_transfer(t)?;
                }
                FlowOwner::Checkpoint(_) => {
                    self.ckpt_flows_pending -= 1;
                    if self.ckpt_flows_pending == 0 {
                        let interval =
                            self.engine.checkpoint.as_ref().map(|p| p.interval).unwrap_or_default();
                        self.complete_checkpoint(interval);
                    }
                }
            }
        }
        Ok(())
    }

    fn process_timers(&mut self) -> Result<()> {
        for rank in 0..self.status.len() {
            match self.status[rank] {
                Status::Computing { cpu_end, pending_flows }
                    if pending_flows == 0 && cpu_end <= self.now + EPS_TIME =>
                {
                    self.status[rank] = Status::Ready;
                }
                Status::Waiting { until } if until <= self.now + EPS_TIME => {
                    self.status[rank] = Status::Ready;
                }
                _ => {}
            }
        }
        let mut i = 0;
        while i < self.starting_transfers.len() {
            let t = self.starting_transfers[i];
            match self.transfers[t].state {
                TransferState::Starting { at } if at <= self.now + EPS_TIME => {
                    self.starting_transfers.swap_remove(i);
                    self.start_transfer_flow(t)?;
                }
                TransferState::Starting { .. } => i += 1,
                // Already started (e.g. directly from start_recv).
                _ => {
                    self.starting_transfers.swap_remove(i);
                }
            }
        }
        Ok(())
    }

    /// Starts the coordinated checkpoint when its timer is due.
    fn maybe_start_checkpoint(&mut self) -> Result<()> {
        let due = matches!(self.next_ckpt_at, Some(at) if at <= self.now + EPS_TIME);
        if !due {
            return Ok(());
        }
        let Some(policy) = self.engine.checkpoint.clone() else { return Ok(()) };
        self.start_checkpoint(&policy)
    }

    /// Builds one checkpoint write flow per (live rank, target node) and
    /// registers them; they contend with application traffic under max-min
    /// fairness like any other flows. If any write would route over a dead
    /// resource the whole coordinated checkpoint is postponed one interval
    /// — it commits for everyone or for no one.
    fn start_checkpoint(&mut self, policy: &CheckpointPolicy) -> Result<()> {
        self.next_ckpt_at = None;
        let machine = self.engine.machine;
        let spec = machine.spec();
        let mut new_flows = Vec::new();
        let mut dram = vec![0.0; self.programs.len()];
        for (rank, dram_bytes) in dram.iter_mut().enumerate() {
            if self.status[rank] == Status::Done {
                continue;
            }
            let placement = &self.placements[rank];
            let core = placement.core;
            let src_socket = machine.socket_of(core);
            let layout = match policy.target {
                CheckpointTarget::OwnLayout => placement.layout.clone(),
                CheckpointTarget::Node(node) => MemoryLayout::single(node),
            };
            let mut avg_latency = 0.0;
            for (node, frac) in layout.shares() {
                avg_latency += frac * machine.memory_latency(core, node);
            }
            // Checkpoint state streams out like a STREAM copy: mostly
            // cache misses, so nearly all of it hits DRAM.
            let traffic = TrafficProfile::stream(policy.bytes_per_rank);
            let demand = cache::dram_demand(&spec.cache, &traffic, avg_latency);
            *dram_bytes = demand.bytes;
            for (node, frac) in layout.shares() {
                let bytes = demand.bytes * frac;
                if bytes <= EPS_BYTES {
                    continue;
                }
                let mut route = vec![self.engine.mc_index[node.index()]];
                let dst_socket = machine.socket_of_node(node);
                for link in machine.topology().route(src_socket, dst_socket)? {
                    route.push(self.engine.link_index[link.index()]);
                }
                if let Some(probe) = self.engine.probe_index {
                    route.push(probe);
                }
                if route.iter().any(|&r| self.resources.get(r).capacity <= 0.0) {
                    self.next_ckpt_at = Some(self.now + policy.interval);
                    return Ok(());
                }
                new_flows.push(ActiveFlow {
                    owner: FlowOwner::Checkpoint(rank),
                    spec: FlowSpec::new(route, demand.self_cap * frac),
                    initial: bytes,
                    remaining: bytes,
                    rate: 0.0,
                });
            }
        }
        if new_flows.is_empty() {
            // Nothing to write (negligible demand): commit immediately.
            self.complete_checkpoint(policy.interval);
            return Ok(());
        }
        for (rank, bytes) in dram.iter().enumerate() {
            self.metrics.dram_bytes[rank] += *bytes;
        }
        self.ckpt_flows_pending = new_flows.len();
        for f in new_flows {
            self.add_flow(f);
        }
        Ok(())
    }

    /// Commits the in-progress checkpoint: settles live-flow byte
    /// accounting up to now (so a later rollback can neither double-charge
    /// nor lose traffic that physically happened), snapshots application
    /// and channel state, and rearms the timer.
    fn complete_checkpoint(&mut self, interval: f64) {
        self.settle_flow_bytes();
        self.metrics.checkpoints_taken += 1;
        self.next_ckpt_at = Some(self.now + interval);
        self.take_snapshot();
    }

    /// Charges every live flow for the bytes it moved so far and rebases
    /// it, so the same bytes are never charged twice.
    fn settle_flow_bytes(&mut self) {
        for f in self.flows.iter_mut().flatten() {
            let moved = (f.initial - f.remaining.max(0.0)).max(0.0);
            if moved > 0.0 {
                for &r in &f.spec.route {
                    self.metrics.resource_bytes[r] += moved;
                }
            }
            f.initial = f.remaining.max(0.0);
            f.remaining = f.initial;
        }
    }

    /// Captures the consistent global cut a future rollback restores.
    fn take_snapshot(&mut self) {
        self.snapshot = Some(Box::new(SimSnapshot {
            at: self.now,
            pc: self.pc.clone(),
            status: self.status.clone(),
            finish: self.finish.clone(),
            flows: self.flows.clone(),
            live_flows: self.live_flows,
            transfers: self.transfers.clone(),
            starting_transfers: self.starting_transfers.clone(),
            pending_sends: self.pending_sends.clone(),
            pending_recvs: self.pending_recvs.clone(),
            barrier_arrived: self.barrier_arrived,
        }));
    }

    /// Rolls the whole job back to the last completed checkpoint after
    /// `rank` was killed and replays from there. Environment state —
    /// capacities, the fault cursor, metrics, the trace so far — stays
    /// live; the restored application state has its absolute-time fields
    /// shifted into the post-restart timeline.
    fn recover_from_kill(&mut self, rank: usize) {
        let policy = self.engine.checkpoint.as_ref().expect("kill recovery requires a policy");
        let killed_at = self.now;
        let resumed_at = killed_at + policy.restart_delay;
        let interval = policy.interval;
        // In-flight traffic died with the job, but the bytes it moved were
        // physically moved: settle them before discarding the flows.
        for f in self.flows.iter().flatten() {
            let moved = (f.initial - f.remaining.max(0.0)).max(0.0);
            for &r in &f.spec.route {
                self.metrics.resource_bytes[r] += moved;
            }
        }
        // The ops in flight at the kill are lost work: close their spans.
        for r in 0..self.programs.len() {
            self.trace_close_span(r);
        }
        let snap: SimSnapshot =
            (**self.snapshot.as_ref().expect("a checkpoint policy always has a snapshot")).clone();
        let restored_to = snap.at;
        let delta = resumed_at - restored_to;
        self.pc = snap.pc;
        self.status = snap.status;
        self.finish = snap.finish;
        self.flows = snap.flows;
        self.live_flows = snap.live_flows;
        self.transfers = snap.transfers;
        self.starting_transfers = snap.starting_transfers;
        self.pending_sends = snap.pending_sends;
        self.pending_recvs = snap.pending_recvs;
        self.barrier_arrived = snap.barrier_arrived;
        // Shift every absolute-time field into the replay timeline; the
        // uniform shift preserves every relative deadline, including ones
        // already in the past at the snapshot.
        for s in &mut self.status {
            match s {
                Status::Computing { cpu_end, .. } => *cpu_end += delta,
                Status::Waiting { until } => *until += delta,
                _ => {}
            }
        }
        for tr in &mut self.transfers {
            tr.send_post += delta;
            if let TransferState::Starting { at } = &mut tr.state {
                *at += delta;
            }
        }
        self.ckpt_flows_pending = 0;
        self.next_ckpt_at = Some(resumed_at + interval);
        self.now = resumed_at;
        self.rates_dirty = true;
        self.metrics.recoveries += 1;
        let num_resources = self.resources.len();
        let rank_state = self.trace.is_some().then(|| rank_states(&self.status));
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.recoveries.push(RecoveryStamp {
                rank: RankId::new(rank),
                killed_at,
                restored_to,
                resumed_at,
            });
            // Keep the interval timeline gap-free across restart downtime.
            if resumed_at > killed_at {
                trace.intervals.push(SolverInterval {
                    t0: killed_at,
                    t1: resumed_at,
                    utilization: vec![0.0; num_resources],
                    rank_state: rank_state.unwrap_or_default(),
                });
            }
        }
    }

    /// Declares every in-flight transfer crossing a severed resource lost
    /// and queues retransmits (retry policy permitting). Without a retry
    /// policy a severed link behaves like a zero-capacity degrade: flows
    /// starve and the no-progress diagnosis names the stalled rank.
    fn detect_lost_transfers(&mut self, index: ResourceIndex) -> Result<()> {
        let Some(retry) = self.engine.retry.clone() else { return Ok(()) };
        for slot in 0..self.flows.len() {
            let is_lost = match &self.flows[slot] {
                Some(f) => {
                    matches!(f.owner, FlowOwner::Transfer(_)) && f.spec.route.contains(&index)
                }
                None => false,
            };
            if !is_lost {
                continue;
            }
            let Some(flow) = self.flows[slot].take() else { continue };
            self.live_flows -= 1;
            self.rates_dirty = true;
            // Bytes that crossed before the cut really moved; the
            // retransmit resends the full payload on top of them.
            let moved = (flow.initial - flow.remaining.max(0.0)).max(0.0);
            for &r in &flow.spec.route {
                self.metrics.resource_bytes[r] += moved;
            }
            let FlowOwner::Transfer(t) = flow.owner else { continue };
            self.schedule_retry(t, &retry)?;
        }
        Ok(())
    }

    /// Queues transfer `t` for retransmission after the failure-detection
    /// timeout plus exponential backoff.
    fn schedule_retry(&mut self, t: usize, retry: &RetryPolicy) -> Result<()> {
        let attempts = self.transfers[t].attempts;
        if attempts >= retry.max_retries {
            return Err(Error::RetriesExhausted {
                rank: RankId::new(self.transfers[t].src),
                attempts,
                at_time: self.now,
            });
        }
        self.transfers[t].attempts = attempts + 1;
        self.metrics.retries += 1;
        let at = self.now + retry.detection_timeout + retry.backoff_for(attempts);
        self.transfers[t].state = TransferState::Starting { at };
        self.starting_transfers.push(t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NumaNodeId;
    use crate::systems;
    use crate::traffic::TrafficProfile;

    fn local_placement(m: &Machine, core: usize) -> RankPlacement {
        let node = m.node_of_socket(m.socket_of(CoreId::new(core)));
        RankPlacement::new(CoreId::new(core), MemoryLayout::single(node))
    }

    fn stream_program(bytes: f64) -> Program {
        let mut p = Program::new();
        p.compute(ComputePhase::new("stream", 0.0, TrafficProfile::stream(bytes)));
        p
    }

    #[test]
    fn single_core_stream_matches_littles_law() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let report = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap();
        let bw = 1e9 / report.makespan;
        // 140 ns latency, 8 lines of 64 B => ~3.66 GB/s.
        assert!(bw > 3.4e9 && bw < 3.9e9, "bw = {:.3} GB/s", bw / 1e9);
    }

    #[test]
    fn two_cores_one_socket_share_the_controller() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let one = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap();
        let both = engine
            .run(
                &[local_placement(&m, 0), local_placement(&m, 1)],
                &[stream_program(1e9), stream_program(1e9)],
            )
            .unwrap();
        // Each core alone: ~3.66 GB/s; both want 7.3 through a 4.2 GB/s
        // sustained controller: per-core drops to 2.1 — the paper's
        // Figure 2/3 "flat or degraded" second-core observation.
        let ratio = both.makespan / one.makespan;
        assert!(ratio > 1.4 && ratio < 2.0, "ratio = {ratio}");
    }

    #[test]
    fn two_sockets_scale_nearly_linearly() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let one = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap();
        // Cores 0 and 2 are on different sockets.
        let two = engine
            .run(
                &[local_placement(&m, 0), local_placement(&m, 2)],
                &[stream_program(1e9), stream_program(1e9)],
            )
            .unwrap();
        assert!((two.makespan - one.makespan).abs() / one.makespan < 0.01);
    }

    #[test]
    fn remote_memory_is_slower_than_local() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let local = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap();
        let remote = engine
            .run(
                &[RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(1)))],
                &[stream_program(1e9)],
            )
            .unwrap();
        assert!(remote.makespan > local.makespan * 1.2);
    }

    #[test]
    fn cpu_bound_phase_takes_flops_over_peak() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p = Program::new();
        p.compute(ComputePhase::new("dgemm", 4.4e9, TrafficProfile::none()).with_efficiency(0.5));
        let report = engine.run(&[local_placement(&m, 0)], &[p]).unwrap();
        // 4.4 Gflop at 50% of 4.4 Gflop/s peak = 2 s.
        assert!((report.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pingpong_round_trip_time() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost { setup: 1e-6, cap: 1.4e9, sender_busy: 0.5e-6, rendezvous: false };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 8.0, 0, cost).recv(RankId::new(1), 1);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0).send(RankId::new(0), 8.0, 1, cost);
        let report =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap();
        // Two setups of 1 us each dominate: ~2 us round trip.
        assert!(
            report.makespan > 1.9e-6 && report.makespan < 2.5e-6,
            "rtt = {:.2} us",
            report.makespan * 1e6
        );
    }

    #[test]
    fn rendezvous_blocks_sender_until_delivery() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost { setup: 0.0, cap: 1e9, sender_busy: 0.0, rendezvous: true };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1e6, 0, cost);
        let mut p1 = Program::new();
        p1.delay(1e-3).recv(RankId::new(0), 0);
        let report =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap();
        // Transfer cannot start before the recv at t=1ms; 1 MB at <=1 GB/s
        // adds >=1 ms.
        assert!(report.finish_of(RankId::new(0)) >= 2e-3 * 0.99);
    }

    #[test]
    fn eager_sender_continues_before_delivery() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost { setup: 0.0, cap: 1e9, sender_busy: 1e-6, rendezvous: false };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1e6, 0, cost);
        let mut p1 = Program::new();
        p1.delay(1e-3).recv(RankId::new(0), 0);
        let report =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap();
        assert!(report.finish_of(RankId::new(0)) < 1e-4);
        assert!(report.finish_of(RankId::new(1)) >= 2e-3 * 0.99);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p0 = Program::new();
        p0.delay(5e-3).barrier();
        let mut p1 = Program::new();
        p1.barrier();
        let report =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap();
        assert!((report.finish_of(RankId::new(1)) - 5e-3).abs() < 1e-9);
    }

    #[test]
    fn unmatched_recv_deadlocks() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p0 = Program::new();
        p0.recv(RankId::new(1), 0);
        let p1 = Program::new();
        let err =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap_err();
        assert!(matches!(err, Error::Deadlock { .. }), "{err}");
    }

    #[test]
    fn oversubscribed_core_is_rejected() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let err = engine
            .run(
                &[local_placement(&m, 0), local_placement(&m, 0)],
                &[Program::new(), Program::new()],
            )
            .unwrap_err();
        assert_eq!(err, Error::CoreOversubscribed { core: 0 });
    }

    #[test]
    fn dead_link_surfaces_as_error() {
        let m = Machine::new(systems::dmz());
        let mut engine = Engine::new(&m);
        engine.set_link_capacity(LinkId::new(0), 0.0);
        engine.set_link_capacity(LinkId::new(1), 0.0);
        // Remote memory traffic must cross the dead link.
        let err = engine
            .run(
                &[RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(1)))],
                &[stream_program(1e6)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::ZeroCapacityRoute { .. }), "{err}");
    }

    #[test]
    fn metrics_count_messages_and_bytes() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost::free();
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1024.0, 0, cost);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0);
        let report =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap();
        assert_eq!(report.metrics.messages_sent, vec![1, 0]);
        assert_eq!(report.metrics.bytes_sent, vec![1024.0, 0.0]);
    }

    #[test]
    fn empty_programs_finish_at_time_zero() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let report = engine.run(&[local_placement(&m, 0)], &[Program::new()]).unwrap();
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn interleaved_memory_splits_traffic() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let layout = MemoryLayout::uniform(&[NumaNodeId::new(0), NumaNodeId::new(1)]).unwrap();
        let report = engine
            .run(&[RankPlacement::new(CoreId::new(0), layout)], &[stream_program(1e9)])
            .unwrap();
        // Half the traffic crosses the link: the link resource saw ~0.5 GB
        // (links sit at indices 2..4; index 4 is the probe fabric).
        let link_bytes: f64 = report.metrics.resource_bytes[2..4].iter().sum();
        assert!((link_bytes - 0.5e9).abs() < 1e7, "link bytes = {link_bytes}");
    }

    // ---- fault injection -------------------------------------------------

    /// Core 0 streaming from the remote node: every byte crosses a link.
    fn remote_stream(bytes: f64) -> (RankPlacement, Program) {
        let placement =
            RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(1)));
        (placement, stream_program(bytes))
    }

    /// Degrades both directed links of the dmz machine to `factor`.
    fn degrade_links(plan: crate::FaultPlan, at: f64, factor: f64) -> crate::FaultPlan {
        plan.link_degrade(at, LinkId::new(0), factor).link_degrade(at, LinkId::new(1), factor)
    }

    fn restore_links(plan: crate::FaultPlan, at: f64) -> crate::FaultPlan {
        plan.link_restore(at, LinkId::new(0)).link_restore(at, LinkId::new(1))
    }

    #[test]
    fn mid_run_brownout_and_restore_bounds_makespan() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let (placement, program) = remote_stream(1e9);
        let placements = [placement];
        let programs = [program];

        let healthy = engine.run(&placements, &programs).unwrap().makespan;
        // Links at quarter bandwidth during [50ms, 150ms), then restored.
        let brownout = restore_links(degrade_links(crate::FaultPlan::new(), 0.05, 0.25), 0.15);
        let transient = engine.run_with_faults(&placements, &programs, &brownout).unwrap();
        // Links at quarter bandwidth from t=0, never restored.
        let permanent = degrade_links(crate::FaultPlan::new(), 0.0, 0.25);
        let degraded = engine.run_with_faults(&placements, &programs, &permanent).unwrap().makespan;

        assert!(
            healthy < transient.makespan && transient.makespan < degraded,
            "expected healthy {healthy:.4} < transient {:.4} < degraded {degraded:.4}",
            transient.makespan
        );
        assert_eq!(transient.metrics.faults_applied, 4);
    }

    #[test]
    fn full_outage_with_restore_recovers() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let (placement, program) = remote_stream(1e9);
        let placements = [placement];
        let programs = [program];

        let healthy = engine.run(&placements, &programs).unwrap().makespan;
        // Total link outage during [50ms, 150ms): in-flight traffic pauses
        // at rate zero, then the restore wakes it.
        let plan = restore_links(degrade_links(crate::FaultPlan::new(), 0.05, 0.0), 0.15);
        let report = engine.run_with_faults(&placements, &programs, &plan).unwrap();
        assert!(
            (report.makespan - (healthy + 0.1)).abs() < healthy * 0.01,
            "outage of 0.1s should add ~0.1s: healthy {healthy:.4}, got {:.4}",
            report.makespan
        );
    }

    #[test]
    fn link_kill_without_restore_is_a_typed_stall() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let (placement, program) = remote_stream(1e9);
        // Links die at 50ms with traffic in flight and never come back.
        let plan = degrade_links(crate::FaultPlan::new(), 0.05, 0.0);
        let err = engine.run_with_faults(&[placement], &[program], &plan).unwrap_err();
        match err {
            Error::RankStalled { rank, resource: Some(resource), .. } => {
                assert_eq!(rank, RankId::new(0));
                assert!(resource.contains("link"), "starved resource: {resource}");
            }
            other => panic!("expected capacity-induced RankStalled, got {other}"),
        }
    }

    #[test]
    fn traffic_demanded_during_outage_is_a_zero_capacity_route() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let placement =
            RankPlacement::new(CoreId::new(0), MemoryLayout::single(NumaNodeId::new(1)));
        let mut program = Program::new();
        program.delay(0.1).compute(ComputePhase::new("late", 0.0, TrafficProfile::stream(1e6)));
        // The links are already dead when the phase tries to start.
        let plan = degrade_links(crate::FaultPlan::new(), 0.05, 0.0);
        let err = engine.run_with_faults(&[placement], &[program], &plan).unwrap_err();
        assert!(matches!(err, Error::ZeroCapacityRoute { .. }), "{err}");
    }

    #[test]
    fn rank_stall_without_resume_is_a_typed_error() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p0 = Program::new();
        p0.delay(1e-3).barrier();
        let mut p1 = Program::new();
        p1.barrier();
        // Rank 0 freezes mid-delay; rank 1 waits at the barrier forever.
        let plan = crate::FaultPlan::new().rank_stall(1e-4, RankId::new(0));
        let err = engine
            .run_with_faults(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1], &plan)
            .unwrap_err();
        match err {
            Error::RankStalled { rank, resource: None, .. } => assert_eq!(rank, RankId::new(0)),
            other => panic!("expected RankStalled for rank 0, got {other}"),
        }
    }

    #[test]
    fn stalled_rank_resumes_at_the_scheduled_time() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p = Program::new();
        p.delay(1e-3);
        let plan = crate::FaultPlan::new()
            .rank_stall(2e-4, RankId::new(0))
            .rank_resume(5e-3, RankId::new(0));
        let report = engine.run_with_faults(&[local_placement(&m, 0)], &[p], &plan).unwrap();
        // The delay expires at 1ms but the frozen rank only retires the
        // program when the resume fires at 5ms.
        assert!((report.makespan - 5e-3).abs() < 1e-9, "makespan {}", report.makespan);
    }

    #[test]
    fn event_budget_exhausted_is_a_typed_error() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m).with_max_events(1);
        let cost = MessageCost { setup: 1e-6, cap: 1.4e9, sender_busy: 0.5e-6, rendezvous: false };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 8.0, 0, cost).recv(RankId::new(1), 1);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0).send(RankId::new(0), 8.0, 1, cost);
        let err =
            engine.run(&[local_placement(&m, 0), local_placement(&m, 1)], &[p0, p1]).unwrap_err();
        assert!(matches!(err, Error::EventBudgetExhausted { budget: 1, .. }), "{err}");
    }

    #[test]
    fn time_budget_exhausted_is_a_typed_error() {
        let m = Machine::new(systems::dmz());
        // A 1 GB local stream needs ~0.27s; allow only 0.1s.
        let engine = Engine::new(&m).with_time_budget(0.1);
        let err = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap_err();
        match err {
            Error::TimeBudgetExhausted { budget, next_event } => {
                assert_eq!(budget, 0.1);
                assert!(next_event > 0.1);
            }
            other => panic!("expected TimeBudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn budgets_do_not_trip_on_healthy_runs() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m).with_time_budget(1.0).with_zero_progress_limit(1);
        let report = engine.run(&[local_placement(&m, 0)], &[stream_program(1e9)]).unwrap();
        assert!(report.makespan < 1.0);
    }

    #[test]
    fn invalid_fault_plans_are_rejected() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let plan = crate::FaultPlan::new().link_degrade(0.0, LinkId::new(99), 0.5);
        let err = engine
            .run_with_faults(&[local_placement(&m, 0)], &[Program::new()], &plan)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSpec(_)), "{err}");
    }

    // ---- observability ---------------------------------------------------

    #[test]
    fn tracing_changes_nothing_about_the_run() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost { setup: 1e-6, cap: 1.4e9, sender_busy: 0.5e-6, rendezvous: false };
        let mut p0 = Program::new();
        p0.compute(ComputePhase::new("stream", 0.0, TrafficProfile::stream(1e8)))
            .send(RankId::new(1), 1e6, 0, cost)
            .barrier();
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0).barrier();
        let placements = [local_placement(&m, 0), local_placement(&m, 1)];
        let programs = [p0, p1];

        let plain = engine.run(&placements, &programs).unwrap();
        let off =
            engine.observe(&placements, &programs, &crate::FaultPlan::new(), TraceConfig::off());
        let on =
            engine.observe(&placements, &programs, &crate::FaultPlan::new(), TraceConfig::on());
        // Exact equality, not approximate: the traced run must be
        // bit-identical (attribution is observed, never fed back).
        assert_eq!(plain, off.result.unwrap());
        assert_eq!(plain, on.result.unwrap());
        assert!(off.trace.is_none());
        assert!(on.trace.is_some());
    }

    #[test]
    fn interrupted_run_reports_partial_resource_bytes() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let (placement, program) = remote_stream(1e9);
        let placements = [placement];
        let programs = [program];
        let healthy = engine.run(&placements, &programs).unwrap().makespan;

        // Kill the links a quarter of the way through: the flow starves,
        // the run ends in a typed stall, and the metrics must still show
        // the ~0.25 GB that actually moved (initial - remaining).
        let plan = degrade_links(crate::FaultPlan::new(), healthy * 0.25, 0.0);
        let observed = engine.observe(&placements, &programs, &plan, TraceConfig::off());
        assert!(matches!(observed.result, Err(Error::RankStalled { .. })));
        // Remote node 1: every byte crosses mc:1 (resource index 1).
        let moved = observed.metrics.resource_bytes[1];
        assert!(
            (moved - 0.25e9).abs() < 0.25e9 * 0.02,
            "expected ~0.25 GB through mc:1, got {moved:e}"
        );
        assert!(observed.end_time >= healthy * 0.25);
    }

    #[test]
    fn fault_stamps_record_the_fired_sequence() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let (placement, program) = remote_stream(1e9);
        let brownout = restore_links(degrade_links(crate::FaultPlan::new(), 0.05, 0.25), 0.15);
        let observed = engine.observe(&[placement], &[program], &brownout, TraceConfig::on());
        let trace = observed.trace.unwrap();
        let report = observed.result.unwrap();
        assert_eq!(trace.faults.len(), brownout.events().len());
        assert_eq!(report.metrics.faults_applied, trace.faults.len());
        for (stamp, event) in trace.faults.iter().zip(brownout.events()) {
            assert_eq!(stamp.kind, event.kind);
            assert_eq!(stamp.scheduled, event.at);
            assert!(stamp.fired >= stamp.scheduled - EPS_TIME);
        }
    }

    #[test]
    fn traced_stream_yields_intervals_and_attributed_spans() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let observed = engine.observe(
            &[local_placement(&m, 0)],
            &[stream_program(1e9)],
            &crate::FaultPlan::new(),
            TraceConfig::on(),
        );
        let report = observed.result.unwrap();
        let trace = observed.trace.unwrap();

        // Intervals tile the run.
        let covered: f64 = trace.intervals.iter().map(|iv| iv.t1 - iv.t0).sum();
        assert!((covered - trace.end_time).abs() < 1e-12 * trace.end_time.max(1.0));
        assert!((trace.end_time - report.makespan).abs() < 1e-12);

        // One compute span, attributed to its own cap: a single dmz core
        // streams at ~3.66 GB/s under a 4.2 GB/s controller.
        assert_eq!(trace.spans.len(), 1);
        let span = &trace.spans[0];
        assert_eq!(span.kind, SpanKind::Compute);
        assert_eq!(span.label, "stream");
        assert_eq!(span.dominant_bottleneck(), Some(Bottleneck::FlowCap));

        // Socket 0's controller runs at ~3.66/4.2 = 0.87 utilization.
        let timelines = trace.resource_timelines();
        assert_eq!(timelines[0].name, "mc:socket0");
        assert!(
            timelines[0].mean_utilization > 0.8 && timelines[0].mean_utilization < 0.95,
            "mc:socket0 utilization = {}",
            timelines[0].mean_utilization
        );
        let ranking = trace.bottleneck_ranking();
        assert_eq!(ranking[0].label, "flow-cap");
    }

    #[test]
    fn contended_traced_stream_blames_the_controller() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        // Both cores of socket 0: demand 7.3 GB/s through 4.2 GB/s.
        let observed = engine.observe(
            &[local_placement(&m, 0), local_placement(&m, 1)],
            &[stream_program(1e9), stream_program(1e9)],
            &crate::FaultPlan::new(),
            TraceConfig::on(),
        );
        let trace = observed.trace.unwrap();
        let ranking = trace.bottleneck_ranking();
        assert_eq!(ranking[0].label, "mc:socket0", "ranking: {ranking:?}");
        assert!(trace.resource_timelines()[0].saturation_fraction() > 0.9);
    }

    // ---- recovery --------------------------------------------------------

    #[test]
    fn checkpoints_cost_time_and_are_counted() {
        let m = Machine::new(systems::dmz());
        let plain = Engine::new(&m);
        let placements = [local_placement(&m, 0)];
        let programs = [stream_program(1e9)];
        let healthy = plain.run(&placements, &programs).unwrap();
        let ckpt = Engine::new(&m).with_recovery(CheckpointPolicy::new(0.05, 5e7));
        let report = ckpt.run(&placements, &programs).unwrap();
        assert!(report.metrics.checkpoints_taken >= 2, "{:?}", report.metrics.checkpoints_taken);
        assert!(
            report.makespan > healthy.makespan * 1.02,
            "checkpoint traffic must cost time: {} vs {}",
            report.makespan,
            healthy.makespan
        );
        assert_eq!(report.metrics.recoveries, 0);
    }

    #[test]
    fn kill_without_policy_is_a_typed_error() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let plan = crate::FaultPlan::new().rank_kill(0.1, RankId::new(0));
        let err = engine
            .run_with_faults(&[local_placement(&m, 0)], &[stream_program(1e9)], &plan)
            .unwrap_err();
        assert!(matches!(err, Error::RankKilled { rank, .. } if rank == RankId::new(0)), "{err}");
    }

    #[test]
    fn kill_of_a_finished_rank_is_a_noop() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let mut p1 = Program::new();
        p1.delay(1e-3);
        // Rank 0 finishes at t=0; the kill at 0.5 ms hits a rank whose
        // results are already out.
        let plan = crate::FaultPlan::new().rank_kill(5e-4, RankId::new(0));
        let report = engine
            .run_with_faults(
                &[local_placement(&m, 0), local_placement(&m, 1)],
                &[Program::new(), p1],
                &plan,
            )
            .unwrap();
        assert!((report.makespan - 1e-3).abs() < 1e-9);
        assert_eq!(report.metrics.faults_applied, 1);
    }

    #[test]
    fn kill_with_policy_rolls_back_and_completes() {
        let m = Machine::new(systems::dmz());
        let policy = CheckpointPolicy::new(0.05, 5e7).with_restart_delay(0.01);
        let engine = Engine::new(&m).with_recovery(policy);
        let placements = [local_placement(&m, 0)];
        let programs = [stream_program(1e9)];
        let fault_free = engine.run(&placements, &programs).unwrap();
        let plan = crate::FaultPlan::new().rank_kill(0.15, RankId::new(0));
        let report = engine.run_with_faults(&placements, &programs, &plan).unwrap();
        assert_eq!(report.metrics.recoveries, 1);
        // Lost work since the last checkpoint plus the restart delay must
        // show up in the makespan.
        assert!(
            report.makespan > fault_free.makespan + 0.01,
            "kill must cost at least the downtime: {} vs {}",
            report.makespan,
            fault_free.makespan
        );
    }

    #[test]
    fn kill_before_any_checkpoint_restarts_from_scratch() {
        let m = Machine::new(systems::dmz());
        // Interval longer than the run: only the implicit t=0 snapshot.
        let engine = Engine::new(&m).with_recovery(CheckpointPolicy::new(10.0, 1e6));
        let placements = [local_placement(&m, 0)];
        let programs = [stream_program(1e9)];
        let fault_free = engine.run(&placements, &programs).unwrap();
        let plan = crate::FaultPlan::new().rank_kill(0.1, RankId::new(0));
        let report = engine.run_with_faults(&placements, &programs, &plan).unwrap();
        assert_eq!(report.metrics.recoveries, 1);
        assert!(
            (report.makespan - (fault_free.makespan + 0.1)).abs() < fault_free.makespan * 0.02,
            "restart from t=0 replays everything: {} vs {}",
            report.makespan,
            fault_free.makespan
        );
    }

    #[test]
    fn traced_recovery_is_bit_identical_and_stamped() {
        let m = Machine::new(systems::dmz());
        let policy = CheckpointPolicy::new(0.05, 5e7).with_restart_delay(0.02);
        let engine = Engine::new(&m).with_recovery(policy);
        let cost = MessageCost { setup: 1e-6, cap: 1.4e9, sender_busy: 0.5e-6, rendezvous: false };
        let mut p0 = Program::new();
        p0.compute(ComputePhase::new("stream", 0.0, TrafficProfile::stream(5e8)))
            .send(RankId::new(1), 1e6, 0, cost)
            .barrier();
        let mut p1 = Program::new();
        p1.compute(ComputePhase::new("stream", 0.0, TrafficProfile::stream(5e8)))
            .recv(RankId::new(0), 0)
            .barrier();
        let placements = [local_placement(&m, 0), local_placement(&m, 2)];
        let programs = [p0, p1];
        let plan = crate::FaultPlan::new().rank_kill(0.08, RankId::new(1));

        let off = engine.observe(&placements, &programs, &plan, TraceConfig::off());
        let on = engine.observe(&placements, &programs, &plan, TraceConfig::on());
        assert_eq!(off.result.unwrap(), on.result.unwrap());
        let trace = on.trace.unwrap();
        assert_eq!(trace.recoveries.len(), 1);
        let stamp = &trace.recoveries[0];
        assert_eq!(stamp.rank, RankId::new(1));
        assert!((stamp.killed_at - 0.08).abs() < 1e-9);
        assert!(stamp.restored_to <= stamp.killed_at);
        assert!((stamp.resumed_at - (stamp.killed_at + 0.02)).abs() < 1e-9);
        // The interval timeline stays gap-free across the downtime.
        let covered: f64 = trace.intervals.iter().map(|iv| iv.t1 - iv.t0).sum();
        assert!((covered - trace.end_time).abs() < 1e-9 * trace.end_time.max(1.0));
    }

    #[test]
    fn transfer_retries_over_a_failed_link_until_restore() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m).with_retry(RetryPolicy::new(5e-3).with_backoff(5e-3));
        let cost = MessageCost { setup: 0.0, cap: 1e9, sender_busy: 0.0, rendezvous: true };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1e8, 0, cost);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0);
        let placements = [local_placement(&m, 0), local_placement(&m, 2)];
        let programs = [p0, p1];
        // Sever link 0->1 mid-transfer, restore at 80 ms.
        let plan = crate::FaultPlan::new()
            .link_fail(0.05, LinkId::new(0))
            .link_restore(0.08, LinkId::new(0));
        let report = engine.run_with_faults(&placements, &programs, &plan).unwrap();
        assert!(report.metrics.retries >= 2, "retries = {}", report.metrics.retries);
        // The retransmit resends the full payload after the restore.
        assert!(report.makespan > 0.15, "makespan = {}", report.makespan);
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m).with_retry(RetryPolicy::new(1e-3).with_max_retries(2));
        let cost = MessageCost { setup: 0.0, cap: 1e9, sender_busy: 0.0, rendezvous: true };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1e8, 0, cost);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0);
        let placements = [local_placement(&m, 0), local_placement(&m, 2)];
        let programs = [p0, p1];
        // Severed and never restored: the retry budget runs out.
        let plan = crate::FaultPlan::new().link_fail(0.05, LinkId::new(0));
        let err = engine.run_with_faults(&placements, &programs, &plan).unwrap_err();
        assert!(
            matches!(err, Error::RetriesExhausted { attempts: 2, .. }),
            "expected RetriesExhausted, got {err}"
        );
    }

    #[test]
    fn link_fail_without_retry_policy_starves_like_a_degrade() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let cost = MessageCost { setup: 0.0, cap: 1e9, sender_busy: 0.0, rendezvous: true };
        let mut p0 = Program::new();
        p0.send(RankId::new(1), 1e8, 0, cost);
        let mut p1 = Program::new();
        p1.recv(RankId::new(0), 0);
        let placements = [local_placement(&m, 0), local_placement(&m, 2)];
        let programs = [p0, p1];
        let plan = crate::FaultPlan::new().link_fail(0.05, LinkId::new(0));
        let err = engine.run_with_faults(&placements, &programs, &plan).unwrap_err();
        assert!(matches!(err, Error::RankStalled { resource: Some(_), .. }), "{err}");
    }

    #[test]
    fn halving_the_controller_at_most_doubles_makespan() {
        let m = Machine::new(systems::dmz());
        let engine = Engine::new(&m);
        let placements = [local_placement(&m, 0)];
        let programs = [stream_program(1e9)];
        let healthy = engine.run(&placements, &programs).unwrap().makespan;
        let plan = crate::FaultPlan::new().controller_throttle(0.0, SocketId::new(0), 0.5);
        let degraded = engine.run_with_faults(&placements, &programs, &plan).unwrap().makespan;
        assert!(degraded > healthy, "throttle must cost something");
        assert!(
            degraded <= 2.0 * healthy * 1.001,
            "halving one resource can at most double the makespan: {degraded:.4} vs {healthy:.4}"
        );
    }
}
