//! Typed identifiers for machine entities.
//!
//! Newtypes keep core/socket/node/rank indices from being confused with one
//! another (the classic NUMA bug the paper's `membind` results illustrate:
//! binding memory to node *k* while the scheduler runs the task on socket
//! *j*).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(usize);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// A hardware core (the fundamental execution unit).
    CoreId,
    "core"
);
id_type!(
    /// A processor socket (one or more cores + a memory link).
    SocketId,
    "socket"
);
id_type!(
    /// A NUMA memory node. On the Opteron systems modelled here each socket
    /// has its own directly-attached memory, so nodes map 1:1 to sockets.
    NumaNodeId,
    "node"
);
id_type!(
    /// An MPI rank (a simulated process).
    RankId,
    "rank"
);
id_type!(
    /// A directed HyperTransport link between two sockets.
    LinkId,
    "link"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix_and_index() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(SocketId::new(0).to_string(), "socket0");
        assert_eq!(NumaNodeId::new(7).to_string(), "node7");
        assert_eq!(RankId::new(12).to_string(), "rank12");
        assert_eq!(LinkId::new(1).to_string(), "link1");
    }

    #[test]
    fn conversions_round_trip() {
        let c: CoreId = 5usize.into();
        assert_eq!(usize::from(c), 5);
        assert_eq!(c.index(), 5);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(RankId::default(), RankId::new(0));
    }
}
