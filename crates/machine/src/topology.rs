//! Socket link graph with all-pairs shortest-path routing.
//!
//! The Opteron systems of the paper route memory and coherence traffic over
//! point-to-point HyperTransport links. The Iwill H8501 ("Longs") arranges
//! its eight sockets in a 2×4 **ladder**, so distant sockets are several
//! hops apart — the root cause of its NUMA sensitivity.

use crate::error::{Error, Result};
use crate::ids::{LinkId, SocketId};
use crate::spec::MachineSpec;
use std::collections::VecDeque;

/// Derived routing information for a machine's socket graph.
///
/// Routes are shortest paths computed with BFS from every socket; ties are
/// broken deterministically by lowest next-hop socket index so simulations
/// are reproducible.
#[derive(Debug, Clone)]
pub struct Topology {
    sockets: usize,
    /// Directed links: `links[l] = (from, to)`.
    links: Vec<(SocketId, SocketId)>,
    /// `link_index[from][to]` = directed link id for an adjacent pair.
    link_index: Vec<Vec<Option<LinkId>>>,
    /// `edge_of[l]` = index into the spec's edge list that produced
    /// directed link `l` (both directions map to the same edge).
    edge_of: Vec<usize>,
    /// `next_hop[src][dst]` = first socket on the route.
    next_hop: Vec<Vec<Option<SocketId>>>,
    /// `hops[src][dst]` = route length in links.
    hops: Vec<Vec<usize>>,
    diameter: usize,
}

impl Topology {
    /// Builds routing tables from a spec's edge list.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DisconnectedTopology`] if any socket is unreachable
    /// from socket 0.
    pub fn from_spec(spec: &MachineSpec) -> Result<Self> {
        let n = spec.sockets.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut links = Vec::new();
        let mut link_index = vec![vec![None; n]; n];
        let mut edge_of = Vec::new();
        for (ei, e) in spec.edges.iter().enumerate() {
            for (a, b) in [(e.a, e.b), (e.b, e.a)] {
                if link_index[a][b].is_none() {
                    let id = LinkId::new(links.len());
                    links.push((SocketId::new(a), SocketId::new(b)));
                    link_index[a][b] = Some(id);
                    edge_of.push(ei);
                    adj[a].push(b);
                }
            }
        }
        for neigh in &mut adj {
            neigh.sort_unstable();
        }

        let mut next_hop = vec![vec![None; n]; n];
        let mut hops = vec![vec![usize::MAX; n]; n];
        for src in 0..n {
            // BFS with deterministic neighbour order.
            let mut dist = vec![usize::MAX; n];
            let mut first = vec![None; n];
            dist[src] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        first[v] = if u == src { Some(SocketId::new(v)) } else { first[u] };
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dist[dst] == usize::MAX {
                    return Err(Error::DisconnectedTopology { unreachable: dst });
                }
                hops[src][dst] = dist[dst];
                next_hop[src][dst] = first[dst];
            }
        }
        let diameter = hops.iter().flat_map(|row| row.iter().copied()).max().unwrap_or(0);
        Ok(Self { sockets: n, links, link_index, edge_of, next_hop, hops, diameter })
    }

    /// Number of sockets in the graph.
    pub fn num_sockets(&self) -> usize {
        self.sockets
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Endpoints of a directed link.
    pub fn link_endpoints(&self, link: LinkId) -> (SocketId, SocketId) {
        self.links[link.index()]
    }

    /// Index into the spec's edge list that produced a directed link.
    /// Both directions of an edge map to the same index, so per-edge
    /// spec overrides apply symmetrically.
    pub fn edge_of(&self, link: LinkId) -> usize {
        self.edge_of[link.index()]
    }

    /// Shortest-path hop count between two sockets (0 when equal).
    pub fn hops(&self, src: SocketId, dst: SocketId) -> usize {
        self.hops[src.index()][dst.index()]
    }

    /// Longest shortest path in the graph.
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// The directed links along the deterministic shortest route from
    /// `src` to `dst` (empty when they are the same socket).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] if the routing tables have no path
    /// — unreachable for topologies built by [`Topology::from_spec`],
    /// which rejects disconnected graphs, but kept typed so malformed
    /// state degrades into an error instead of a panic.
    pub fn route(&self, src: SocketId, dst: SocketId) -> Result<Vec<LinkId>> {
        let missing = || Error::Disconnected { src: src.index(), dst: dst.index() };
        let mut route = Vec::with_capacity(self.hops(src, dst));
        let mut cur = src;
        while cur != dst {
            let next = self.next_hop[cur.index()][dst.index()].ok_or_else(missing)?;
            let link = self.link_index[cur.index()][next.index()].ok_or_else(missing)?;
            route.push(link);
            cur = next;
        }
        Ok(route)
    }

    /// Average hop distance from a socket to all sockets (including
    /// itself), used by interleaved-memory cost estimates.
    pub fn mean_hops_from(&self, src: SocketId) -> f64 {
        let total: usize = self.hops[src.index()].iter().sum();
        total as f64 / self.sockets as f64
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.sockets == other.sockets && self.links == other.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    fn topo(spec: MachineSpec) -> Topology {
        Topology::from_spec(&spec).expect("valid")
    }

    #[test]
    fn dual_socket_is_one_hop() {
        let t = topo(systems::dmz());
        assert_eq!(t.hops(SocketId::new(0), SocketId::new(1)), 1);
        assert_eq!(t.hops(SocketId::new(0), SocketId::new(0)), 0);
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.num_links(), 2); // one edge, two directions
    }

    #[test]
    fn ladder_diameter_is_four() {
        // 4x2 ladder: corner-to-opposite-corner = 3 rungs + 1 rail = 4 hops.
        let t = topo(systems::longs());
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn routes_have_expected_length_and_connectivity() {
        let t = topo(systems::longs());
        for s in 0..8 {
            for d in 0..8 {
                let route = t.route(SocketId::new(s), SocketId::new(d)).expect("connected");
                assert_eq!(route.len(), t.hops(SocketId::new(s), SocketId::new(d)));
                // Route must be contiguous.
                let mut cur = SocketId::new(s);
                for l in &route {
                    let (from, to) = t.link_endpoints(*l);
                    assert_eq!(from, cur);
                    cur = to;
                }
                assert_eq!(cur, SocketId::new(d));
            }
        }
    }

    #[test]
    fn hops_are_symmetric() {
        let t = topo(systems::longs());
        for s in 0..8 {
            for d in 0..8 {
                assert_eq!(
                    t.hops(SocketId::new(s), SocketId::new(d)),
                    t.hops(SocketId::new(d), SocketId::new(s))
                );
            }
        }
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let mut spec = systems::longs();
        // Remove every edge touching socket 7.
        spec.edges.retain(|e| e.a != 7 && e.b != 7);
        assert_eq!(Topology::from_spec(&spec), Err(Error::DisconnectedTopology { unreachable: 7 }));
    }

    #[test]
    fn both_directions_map_to_the_same_edge() {
        let spec = systems::longs();
        let t = topo(spec.clone());
        for l in 0..t.num_links() {
            let link = LinkId::new(l);
            let (from, to) = t.link_endpoints(link);
            let e = spec.edges[t.edge_of(link)];
            assert!(
                (e.a, e.b) == (from.index(), to.index())
                    || (e.a, e.b) == (to.index(), from.index())
            );
        }
    }

    #[test]
    fn mean_hops_center_less_than_corner() {
        let t = topo(systems::longs());
        // Socket 0 is a corner of the ladder; socket 2 is interior.
        assert!(t.mean_hops_from(SocketId::new(2)) < t.mean_hops_from(SocketId::new(0)));
    }
}
