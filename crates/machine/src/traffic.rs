//! Memory-traffic descriptors for compute phases.
//!
//! A workload model describes each compute phase by the bytes its inner
//! loops *touch*, the access pattern, and the working-set size. The cache
//! model in [`crate::cache`] turns this into the DRAM traffic the phase
//! actually generates and the per-core bandwidth cap it can sustain.

/// How a phase walks memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Sequential, prefetch-friendly streaming (STREAM, DAXPY, stencils).
    Stream,
    /// Dependent or random accesses that defeat prefetch (RandomAccess,
    /// sparse matrix-vector with irregular columns).
    Random,
    /// Large-strided sweeps that defeat the prefetcher but touch whole
    /// lines (FFT butterflies, matrix transposes): latency-sensitive at
    /// full line utilization.
    Strided,
    /// Cache-blocked access with high reuse (DGEMM, FFT butterflies); the
    /// reuse factor is carried in [`TrafficProfile::reuse`].
    Blocked,
    /// Dependent table lookups over a large shared structure (XSBench-style
    /// cross-section search): each lookup chases a short pointer chain
    /// through lines it *needs whole*, so — unlike [`AccessPattern::Random`]
    /// — the byte count is already line-granular and is not amplified
    /// further. Sustains modest MLP and pays an extra row-buffer-miss/TLB
    /// latency on every access.
    Lookup,
}

/// Memory traffic description of one compute phase on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficProfile {
    /// Bytes the phase's loops touch (reads + writes), before cache
    /// filtering.
    pub bytes: f64,
    /// Size of the data the phase cycles over. If this fits in L2 the
    /// phase only pays compulsory misses.
    pub working_set: f64,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// For [`AccessPattern::Blocked`]: the number of times each byte is
    /// reused from cache (DGEMM with block size `b` reuses ~`b` times).
    /// Ignored for other patterns. Must be >= 1.
    pub reuse: f64,
}

impl TrafficProfile {
    /// A streaming profile that touches `bytes` over a working set of the
    /// same size (no reuse).
    pub fn stream(bytes: f64) -> Self {
        Self { bytes, working_set: bytes, pattern: AccessPattern::Stream, reuse: 1.0 }
    }

    /// A streaming profile with an explicit working set (for repeated
    /// sweeps over the same array: `bytes` may exceed `working_set`).
    pub fn stream_over(bytes: f64, working_set: f64) -> Self {
        Self { bytes, working_set, pattern: AccessPattern::Stream, reuse: 1.0 }
    }

    /// A random-access profile over `working_set` bytes touching `bytes`.
    pub fn random(bytes: f64, working_set: f64) -> Self {
        Self { bytes, working_set, pattern: AccessPattern::Random, reuse: 1.0 }
    }

    /// A cache-blocked profile with the given reuse factor.
    pub fn blocked(bytes: f64, working_set: f64, reuse: f64) -> Self {
        Self { bytes, working_set, pattern: AccessPattern::Blocked, reuse: reuse.max(1.0) }
    }

    /// A prefetch-defeating strided profile over `working_set` bytes.
    pub fn strided(bytes: f64, working_set: f64) -> Self {
        Self { bytes, working_set, pattern: AccessPattern::Strided, reuse: 1.0 }
    }

    /// A dependent-lookup profile over a `working_set`-byte table touching
    /// `bytes` of whole cache lines (the caller accounts line granularity;
    /// no further amplification is applied).
    pub fn lookup(bytes: f64, working_set: f64) -> Self {
        Self { bytes, working_set, pattern: AccessPattern::Lookup, reuse: 1.0 }
    }

    /// A profile that generates no memory traffic (pure compute, e.g. the
    /// Generalized Born inner loops once data is cache-resident).
    pub fn none() -> Self {
        Self { bytes: 0.0, working_set: 0.0, pattern: AccessPattern::Stream, reuse: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_patterns() {
        assert_eq!(TrafficProfile::stream(8.0).pattern, AccessPattern::Stream);
        assert_eq!(TrafficProfile::random(8.0, 64.0).pattern, AccessPattern::Random);
        assert_eq!(TrafficProfile::blocked(8.0, 64.0, 16.0).pattern, AccessPattern::Blocked);
        assert_eq!(TrafficProfile::lookup(8.0, 64.0).pattern, AccessPattern::Lookup);
    }

    #[test]
    fn blocked_clamps_reuse_to_one() {
        let p = TrafficProfile::blocked(8.0, 64.0, 0.25);
        assert_eq!(p.reuse, 1.0);
    }

    #[test]
    fn none_has_zero_bytes() {
        assert_eq!(TrafficProfile::none().bytes, 0.0);
    }
}
