//! Memory layouts: where a rank's pages live.
//!
//! The affinity crate decides *policy* (localalloc, membind, interleave,
//! first-touch under the default scheduler); this module provides the
//! *mechanism*: a normalized distribution of a rank's pages over NUMA
//! nodes that the engine uses to split each compute phase's DRAM traffic
//! into per-node flows.

use crate::error::{Error, Result};
use crate::ids::NumaNodeId;

/// Fraction of a rank's pages resident on each NUMA node.
///
/// Invariant: weights are non-negative and sum to 1 (enforced by
/// [`MemoryLayout::new`], which normalizes).
///
/// ```
/// use corescope_machine::{MemoryLayout, NumaNodeId};
/// # fn main() -> Result<(), corescope_machine::Error> {
/// let layout = MemoryLayout::new(vec![(NumaNodeId::new(0), 3.0), (NumaNodeId::new(1), 1.0)])?;
/// assert!((layout.fraction(NumaNodeId::new(0)) - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLayout {
    shares: Vec<(NumaNodeId, f64)>,
}

impl MemoryLayout {
    /// Builds a layout from raw node weights, normalizing them to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLayout`] if the weights are empty, contain a
    /// negative or non-finite entry, or all weights are zero.
    pub fn new(weights: Vec<(NumaNodeId, f64)>) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::InvalidLayout("no node weights".into()));
        }
        let mut total = 0.0;
        for &(node, w) in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::InvalidLayout(format!(
                    "weight {w} for {node} is negative or non-finite"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(Error::InvalidLayout("all node weights are zero".into()));
        }
        // Merge duplicate nodes, normalize, and drop zero entries.
        let mut merged: Vec<(NumaNodeId, f64)> = Vec::new();
        for (node, w) in weights {
            if w == 0.0 {
                continue;
            }
            match merged.iter_mut().find(|(n, _)| *n == node) {
                Some((_, acc)) => *acc += w / total,
                None => merged.push((node, w / total)),
            }
        }
        merged.sort_by_key(|(n, _)| *n);
        Ok(Self { shares: merged })
    }

    /// A layout with every page on a single node.
    pub fn single(node: NumaNodeId) -> Self {
        Self { shares: vec![(node, 1.0)] }
    }

    /// A layout spreading pages uniformly over the given nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLayout`] if `nodes` is empty.
    pub fn uniform(nodes: &[NumaNodeId]) -> Result<Self> {
        Self::new(nodes.iter().map(|&n| (n, 1.0)).collect())
    }

    /// Mixes this layout with another: `(1 - alpha)` of self plus `alpha`
    /// of `other`. Used to model the default scheduler's page
    /// misplacement fraction.
    pub fn mix(&self, other: &Self, alpha: f64) -> Self {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut weights: Vec<(NumaNodeId, f64)> = Vec::new();
        for &(n, w) in &self.shares {
            weights.push((n, w * (1.0 - alpha)));
        }
        for &(n, w) in &other.shares {
            weights.push((n, w * alpha));
        }
        Self::new(weights).expect("mix of valid layouts is valid")
    }

    /// The fraction of pages on `node` (0 when absent).
    pub fn fraction(&self, node: NumaNodeId) -> f64 {
        self.shares.iter().find(|(n, _)| *n == node).map(|(_, w)| *w).unwrap_or(0.0)
    }

    /// Iterates `(node, fraction)` pairs with positive fractions, in node
    /// order.
    pub fn shares(&self) -> impl Iterator<Item = (NumaNodeId, f64)> + '_ {
        self.shares.iter().copied()
    }

    /// Number of nodes holding pages.
    pub fn num_nodes(&self) -> usize {
        self.shares.len()
    }

    /// Validates that every node index is below `num_nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeOutOfRange`] for an out-of-machine node.
    pub fn check_nodes(&self, num_nodes: usize) -> Result<()> {
        for &(n, _) in &self.shares {
            if n.index() >= num_nodes {
                return Err(Error::NodeOutOfRange { node: n.index(), num_nodes });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NumaNodeId {
        NumaNodeId::new(i)
    }

    #[test]
    fn normalizes_weights() {
        let l = MemoryLayout::new(vec![(node(0), 2.0), (node(1), 6.0)]).unwrap();
        assert!((l.fraction(node(0)) - 0.25).abs() < 1e-12);
        assert!((l.fraction(node(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merges_duplicates() {
        let l = MemoryLayout::new(vec![(node(0), 1.0), (node(0), 1.0), (node(1), 2.0)]).unwrap();
        assert!((l.fraction(node(0)) - 0.5).abs() < 1e-12);
        assert_eq!(l.num_nodes(), 2);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(MemoryLayout::new(vec![]).is_err());
        assert!(MemoryLayout::new(vec![(node(0), -1.0)]).is_err());
        assert!(MemoryLayout::new(vec![(node(0), f64::NAN)]).is_err());
        assert!(MemoryLayout::new(vec![(node(0), 0.0)]).is_err());
    }

    #[test]
    fn single_puts_everything_on_one_node() {
        let l = MemoryLayout::single(node(3));
        assert_eq!(l.fraction(node(3)), 1.0);
        assert_eq!(l.fraction(node(0)), 0.0);
    }

    #[test]
    fn uniform_splits_evenly() {
        let l = MemoryLayout::uniform(&[node(0), node(1), node(2), node(3)]).unwrap();
        for i in 0..4 {
            assert!((l.fraction(node(i)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn mix_blends_layouts() {
        let local = MemoryLayout::single(node(0));
        let spread = MemoryLayout::uniform(&[node(0), node(1)]).unwrap();
        let mixed = local.mix(&spread, 0.2);
        assert!((mixed.fraction(node(0)) - 0.9).abs() < 1e-12);
        assert!((mixed.fraction(node(1)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn check_nodes_catches_out_of_range() {
        let l = MemoryLayout::single(node(9));
        assert!(l.check_nodes(8).is_err());
        assert!(l.check_nodes(10).is_ok());
    }

    #[test]
    fn fractions_sum_to_one() {
        let l = MemoryLayout::new(vec![(node(0), 0.3), (node(2), 0.5), (node(5), 1.1)]).unwrap();
        let sum: f64 = l.shares().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
