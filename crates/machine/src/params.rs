//! Runtime calibration parameters: every DESIGN §6 constant as a value.
//!
//! The compile-time constants in [`crate::systems::calib`] (and their
//! smpi/affinity counterparts) pin the machine model to the shipped
//! 2006-era calibration. [`CalibParams`] lifts each of them into a field
//! with documented bounds so a machine — and the MPI substrate on top of
//! it — can be built from *any* parameter point: the calibration search
//! in `corescope-calib` walks this box, and
//! [`CalibParams::paper_2006`] reproduces the shipped constants exactly
//! (bit-for-bit, so default-parameter runs are byte-identical to the
//! pre-parameterized code).

use crate::systems::{calib, modern};

/// One point in the calibration box: every tunable constant of the
/// machine, MPI, and placement models.
///
/// Field defaults come from [`CalibParams::paper_2006`]; bounds (used by
/// the search and the sensitivity analysis) are documented per field and
/// exposed through [`CalibParams::FIELDS`]. All fields are plain `f64`
/// so the struct is `Copy` and totally ordered per-field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibParams {
    /// Double-precision flops per cycle (K8 SSE2: 2). Bounds [1, 4].
    pub flops_per_cycle: f64,
    /// L1 data cache bytes (64 KiB). Bounds [16 KiB, 256 KiB].
    pub l1_bytes: f64,
    /// Unified L2 bytes (1 MiB). Bounds [256 KiB, 8 MiB].
    pub l2_bytes: f64,
    /// Cache line bytes (64). Bounds [32, 128].
    pub line_bytes: f64,
    /// Outstanding line fills under hardware prefetch (8). Bounds [2, 16].
    pub stream_mlp: f64,
    /// Outstanding line fills for dependent random access (1.6).
    /// Bounds [1, 4].
    pub random_mlp: f64,
    /// Outstanding line fills for prefetch-defeating strides (2).
    /// Bounds [1, 4].
    pub strided_mlp: f64,
    /// Sustained DDR-400 controller bandwidth, bytes/s (4.2e9).
    /// Bounds [2e9, 6.4e9] (6.4 GB/s is the interface peak).
    pub dram_bandwidth: f64,
    /// Idle local DRAM latency, seconds (70 ns). Bounds [40 ns, 150 ns].
    pub dram_latency: f64,
    /// Usable coherent-HT bandwidth per direction, bytes/s (2e9).
    /// Bounds [0.5e9, 4e9].
    pub ht_bandwidth: f64,
    /// Per-hop HyperTransport latency, seconds (55 ns).
    /// Bounds [20 ns, 120 ns].
    pub ht_hop_latency: f64,
    /// Fixed coherence probe cost, seconds (25 ns). Bounds [0, 100 ns].
    pub probe_base: f64,
    /// Probe cost per hop of topology diameter, seconds (45 ns).
    /// Bounds [0, 120 ns].
    pub probe_per_hop: f64,
    /// Probe-fabric capacity on two-socket machines, bytes/s of DRAM
    /// traffic (1e12 — effectively unlimited). Bounds [1e10, 1e13].
    pub probe_capacity_small: f64,
    /// Probe-fabric capacity on the eight-socket ladder, bytes/s (14e9).
    /// Bounds [5e9, 1e12]; the top of the box is "effectively
    /// unlimited", the no-fabric counterfactual the ablation sweeps to.
    pub probe_capacity_ladder: f64,
    /// Per-message SysV semaphore cost, seconds (2.4 µs).
    /// Bounds [0.5 µs, 10 µs].
    pub lock_sysv: f64,
    /// Per-message user-space spin-lock cost, seconds (0.12 µs).
    /// Bounds [0.01 µs, 1 µs].
    pub lock_usysv: f64,
    /// Intra-socket shared-memory copy bandwidth boost (1.12, the
    /// paper's "approximately 10 to 13%"). Bounds [1.0, 1.5].
    pub same_socket_boost: f64,
    /// Fraction of pages the default first-touch policy leaves on the
    /// wrong node (0.10). Bounds [0, 0.5].
    pub misplacement: f64,
    /// Outstanding line fills for dependent table lookups (3).
    /// Bounds [1, 8].
    pub lookup_mlp: f64,
    /// Extra row-buffer-miss/TLB latency per dependent table lookup,
    /// seconds (60 ns). Bounds [0, 200 ns].
    pub lookup_latency: f64,
    /// Usable on-package (die-to-die) link bandwidth per direction on
    /// the chiplet generations, bytes/s (45e9). Bounds [10e9, 200e9].
    pub onpkg_bandwidth: f64,
    /// Per-hop latency of an on-package link, seconds (30 ns).
    /// Bounds [5 ns, 100 ns].
    pub onpkg_latency: f64,
    /// Sustained DRAM bandwidth per chiplet-attached controller pair on
    /// the modern generations, bytes/s (32e9). Bounds [10e9, 128e9].
    pub tier_dram_bandwidth: f64,
    /// Sustained bandwidth of an on-package HBM stack presented as its
    /// own memory node, bytes/s (600e9). Bounds [100e9, 1600e9].
    pub tier_hbm_bandwidth: f64,
}

/// One axis of the calibration box: name, bounds, and typed accessors
/// for the corresponding [`CalibParams`] field.
#[derive(Clone, Copy)]
pub struct ParamField {
    /// Stable snake_case name (encoding, JSON, and report labels).
    pub name: &'static str,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    read: fn(&CalibParams) -> f64,
    write: fn(&mut CalibParams, f64),
}

impl ParamField {
    /// Reads this field's value from a parameter point.
    pub fn read(&self, p: &CalibParams) -> f64 {
        (self.read)(p)
    }

    /// Writes this field's value into a parameter point.
    pub fn write(&self, p: &mut CalibParams, value: f64) {
        (self.write)(p, value)
    }

    /// Clamps `value` into the field's bounds.
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.lo, self.hi)
    }
}

impl std::fmt::Debug for ParamField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamField")
            .field("name", &self.name)
            .field("lo", &self.lo)
            .field("hi", &self.hi)
            .finish()
    }
}

macro_rules! param_field {
    ($name:ident, $lo:expr, $hi:expr) => {
        ParamField {
            name: stringify!($name),
            lo: $lo,
            hi: $hi,
            read: |p| p.$name,
            write: |p, v| p.$name = v,
        }
    };
}

impl CalibParams {
    /// Every field with its bounds, in declaration order. The stable
    /// index of a field in this table is its axis id throughout the
    /// calibration subsystem.
    pub const FIELDS: [ParamField; 25] = [
        param_field!(flops_per_cycle, 1.0, 4.0),
        param_field!(l1_bytes, 16.0 * 1024.0, 256.0 * 1024.0),
        param_field!(l2_bytes, 256.0 * 1024.0, 8.0 * 1024.0 * 1024.0),
        param_field!(line_bytes, 32.0, 128.0),
        param_field!(stream_mlp, 2.0, 16.0),
        param_field!(random_mlp, 1.0, 4.0),
        param_field!(strided_mlp, 1.0, 4.0),
        param_field!(dram_bandwidth, 2e9, 6.4e9),
        param_field!(dram_latency, 40e-9, 150e-9),
        param_field!(ht_bandwidth, 0.5e9, 4e9),
        param_field!(ht_hop_latency, 20e-9, 120e-9),
        param_field!(probe_base, 0.0, 100e-9),
        param_field!(probe_per_hop, 0.0, 120e-9),
        param_field!(probe_capacity_small, 1e10, 1e13),
        param_field!(probe_capacity_ladder, 5e9, 1e12),
        param_field!(lock_sysv, 0.5e-6, 10e-6),
        param_field!(lock_usysv, 0.01e-6, 1e-6),
        param_field!(same_socket_boost, 1.0, 1.5),
        param_field!(misplacement, 0.0, 0.5),
        param_field!(lookup_mlp, 1.0, 8.0),
        param_field!(lookup_latency, 0.0, 200e-9),
        param_field!(onpkg_bandwidth, 10e9, 200e9),
        param_field!(onpkg_latency, 5e-9, 100e-9),
        param_field!(tier_dram_bandwidth, 10e9, 128e9),
        param_field!(tier_hbm_bandwidth, 100e9, 1600e9),
    ];

    /// The shipped 2006 calibration: every field equals the constant it
    /// replaces, bit-for-bit. Building a system from this point yields a
    /// spec identical to the preset builders.
    pub fn paper_2006() -> Self {
        Self {
            flops_per_cycle: calib::FLOPS_PER_CYCLE,
            l1_bytes: calib::L1_BYTES,
            l2_bytes: calib::L2_BYTES,
            line_bytes: calib::LINE_BYTES,
            stream_mlp: calib::STREAM_MLP,
            random_mlp: calib::RANDOM_MLP,
            strided_mlp: calib::STRIDED_MLP,
            dram_bandwidth: calib::DDR400_SUSTAINED_BW,
            dram_latency: calib::DRAM_LATENCY,
            ht_bandwidth: calib::HT_BANDWIDTH,
            ht_hop_latency: calib::HT_HOP_LATENCY,
            probe_base: calib::PROBE_BASE,
            probe_per_hop: calib::PROBE_PER_HOP,
            probe_capacity_small: calib::PROBE_CAPACITY_SMALL,
            probe_capacity_ladder: calib::PROBE_CAPACITY_LADDER,
            // smpi: LockLayer::{SysV, USysV} costs and the same-socket
            // copy boost (cross-checked by smpi/calib tests).
            lock_sysv: 2.4e-6,
            lock_usysv: 0.12e-6,
            same_socket_boost: 1.12,
            // affinity: policy::DEFAULT_MISPLACEMENT (cross-checked by a
            // corescope-calib test).
            misplacement: 0.10,
            lookup_mlp: calib::LOOKUP_MLP,
            lookup_latency: calib::LOOKUP_LATENCY,
            // corescope-topo: the modern-generation axes. The 2006
            // presets never read them, so "paper_2006" still describes
            // every field the 2006 machines consume.
            onpkg_bandwidth: modern::ONPKG_BANDWIDTH,
            onpkg_latency: modern::ONPKG_LATENCY,
            tier_dram_bandwidth: modern::TIER_DRAM_BANDWIDTH,
            tier_hbm_bandwidth: modern::TIER_HBM_BANDWIDTH,
        }
    }

    /// Looks a field up by its stable name.
    pub fn field(name: &str) -> Option<&'static ParamField> {
        Self::FIELDS.iter().find(|f| f.name == name)
    }

    /// Reads the field at `axis` (index into [`CalibParams::FIELDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= FIELDS.len()`.
    pub fn get(&self, axis: usize) -> f64 {
        Self::FIELDS[axis].read(self)
    }

    /// Writes the field at `axis` (index into [`CalibParams::FIELDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= FIELDS.len()`.
    pub fn set(&mut self, axis: usize, value: f64) {
        Self::FIELDS[axis].write(self, value);
    }

    /// Whether every field sits inside its documented bounds.
    pub fn in_bounds(&self) -> bool {
        Self::FIELDS.iter().all(|f| {
            let v = f.read(self);
            v >= f.lo && v <= f.hi
        })
    }

    /// A copy with every field clamped into its bounds.
    #[must_use]
    pub fn clamped(&self) -> Self {
        let mut out = *self;
        for f in &Self::FIELDS {
            let clamped = f.clamp(f.read(&out));
            f.write(&mut out, clamped);
        }
        out
    }
}

impl Default for CalibParams {
    fn default() -> Self {
        Self::paper_2006()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_matches_the_shipped_constants() {
        let p = CalibParams::paper_2006();
        assert_eq!(p.dram_latency.to_bits(), calib::DRAM_LATENCY.to_bits());
        assert_eq!(p.ht_bandwidth.to_bits(), calib::HT_BANDWIDTH.to_bits());
        assert_eq!(p.probe_capacity_ladder.to_bits(), calib::PROBE_CAPACITY_LADDER.to_bits());
        assert_eq!(p.stream_mlp.to_bits(), calib::STREAM_MLP.to_bits());
    }

    #[test]
    fn paper_point_is_inside_the_box() {
        assert!(CalibParams::paper_2006().in_bounds());
    }

    #[test]
    fn modern_axes_match_the_shipped_constants() {
        let p = CalibParams::paper_2006();
        assert_eq!(p.onpkg_bandwidth.to_bits(), modern::ONPKG_BANDWIDTH.to_bits());
        assert_eq!(p.onpkg_latency.to_bits(), modern::ONPKG_LATENCY.to_bits());
        assert_eq!(p.tier_dram_bandwidth.to_bits(), modern::TIER_DRAM_BANDWIDTH.to_bits());
        assert_eq!(p.tier_hbm_bandwidth.to_bits(), modern::TIER_HBM_BANDWIDTH.to_bits());
    }

    #[test]
    fn field_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = CalibParams::FIELDS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CalibParams::FIELDS.len());
        for f in &CalibParams::FIELDS {
            assert!(CalibParams::field(f.name).is_some(), "{}", f.name);
        }
        assert!(CalibParams::field("nope").is_none());
    }

    #[test]
    fn get_set_round_trip_every_axis() {
        let mut p = CalibParams::paper_2006();
        for (i, f) in CalibParams::FIELDS.iter().enumerate() {
            let mid = 0.5 * (f.lo + f.hi);
            p.set(i, mid);
            assert_eq!(p.get(i).to_bits(), mid.to_bits(), "{}", f.name);
        }
    }

    #[test]
    fn clamped_pulls_out_of_range_values_back() {
        let mut p = CalibParams::paper_2006();
        p.dram_latency = 1.0; // absurd: one second
        p.misplacement = -0.5;
        assert!(!p.in_bounds());
        let c = p.clamped();
        assert!(c.in_bounds());
        assert_eq!(c.dram_latency, 150e-9);
        assert_eq!(c.misplacement, 0.0);
    }

    #[test]
    fn bounds_are_well_formed() {
        for f in &CalibParams::FIELDS {
            assert!(f.lo < f.hi, "{}", f.name);
        }
    }
}
