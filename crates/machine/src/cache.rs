//! Analytic cache model: traffic profile → DRAM demand + per-core cap.
//!
//! The paper's computation results divide cleanly into three regimes —
//! cache-resident (DGEMM: "Star DGEMM and Single DGEMM results are almost
//! identical"), bandwidth-bound streaming (STREAM: second core is a net
//! per-socket loss), and latency-bound random access (RandomAccess). The
//! model below reproduces those regimes from working-set size, access
//! pattern, and the machine's latency/MLP parameters.

use crate::spec::CacheSpec;
use crate::traffic::{AccessPattern, TrafficProfile};

/// DRAM-side demand derived from a [`TrafficProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramDemand {
    /// Bytes that must actually move between DRAM and the core.
    pub bytes: f64,
    /// Maximum rate (bytes/s) at which *this core alone* can move them,
    /// given the access latency `latency` (Little's law on outstanding
    /// line fills). Contention may reduce the achieved rate below this.
    pub self_cap: f64,
}

/// Computes the DRAM demand of a phase for a core whose memory accesses
/// experience the given average `latency` (seconds).
///
/// Rules:
/// * Working sets that fit in L2 pay only compulsory misses: each distinct
///   byte is fetched once, re-sweeps hit in cache.
/// * `Stream` traffic with a larger working set misses on every byte but
///   sustains the prefetched MLP.
/// * `Random` traffic fetches a whole line per useful word (×8
///   amplification for 8-byte words) and sustains only the dependent-access
///   MLP — this is what makes RandomAccess latency-bound.
/// * `Blocked` traffic divides by its reuse factor.
///
/// ```
/// use corescope_machine::{systems, cache, TrafficProfile};
/// let spec = systems::dmz();
/// // 1 MiB working set fits in L2: nearly no DRAM traffic on re-sweeps.
/// let hot = cache::dram_demand(
///     &spec.cache,
///     &TrafficProfile::stream_over(64.0 * 1024.0 * 1024.0, 512.0 * 1024.0),
///     140e-9,
/// );
/// assert!(hot.bytes <= 512.0 * 1024.0);
/// ```
pub fn dram_demand(cache: &CacheSpec, profile: &TrafficProfile, latency: f64) -> DramDemand {
    debug_assert!(latency > 0.0, "latency must be positive");
    let line = cache.line_bytes;
    let stream_cap = cache.stream_mlp * line / latency;
    let random_cap = cache.random_mlp * line / latency;
    let strided_cap = cache.strided_mlp * line / latency;
    let lookup_cap = cache.lookup_mlp * line / latency;

    if profile.bytes <= 0.0 {
        return DramDemand { bytes: 0.0, self_cap: stream_cap };
    }

    // Fully cache-resident: compulsory misses only.
    if profile.working_set <= cache.l2_bytes {
        let compulsory = profile.working_set.min(profile.bytes);
        return DramDemand { bytes: compulsory, self_cap: stream_cap };
    }

    match profile.pattern {
        AccessPattern::Stream => DramDemand { bytes: profile.bytes, self_cap: stream_cap },
        AccessPattern::Strided => DramDemand { bytes: profile.bytes, self_cap: strided_cap },
        AccessPattern::Random => {
            // Whole-line fetch per (8-byte) word touched, minus the slice
            // of the table that happens to be cache-resident.
            let hit = (cache.l2_bytes / profile.working_set).min(1.0);
            let amplification = line / 8.0;
            DramDemand { bytes: profile.bytes * amplification * (1.0 - hit), self_cap: random_cap }
        }
        AccessPattern::Blocked => {
            DramDemand { bytes: profile.bytes / profile.reuse, self_cap: stream_cap }
        }
        AccessPattern::Lookup => {
            // The profile's bytes are already whole lines (the workload
            // model counts lines per lookup), so only cache residency
            // filters them; no ×(line/word) amplification.
            let hit = (cache.l2_bytes / profile.working_set).min(1.0);
            DramDemand { bytes: profile.bytes * (1.0 - hit), self_cap: lookup_cap }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CacheSpec;
    use crate::systems::calib;

    fn k8() -> CacheSpec {
        CacheSpec {
            l1_bytes: calib::L1_BYTES,
            l2_bytes: calib::L2_BYTES,
            line_bytes: calib::LINE_BYTES,
            stream_mlp: calib::STREAM_MLP,
            random_mlp: calib::RANDOM_MLP,
            strided_mlp: calib::STRIDED_MLP,
            lookup_mlp: calib::LOOKUP_MLP,
        }
    }

    const LAT: f64 = 140e-9;

    #[test]
    fn cache_resident_pays_only_compulsory() {
        let p = TrafficProfile::stream_over(1e9, 256.0 * 1024.0);
        let d = dram_demand(&k8(), &p, LAT);
        assert_eq!(d.bytes, 256.0 * 1024.0);
    }

    #[test]
    fn streaming_misses_everything() {
        let p = TrafficProfile::stream(1e9);
        let d = dram_demand(&k8(), &p, LAT);
        assert_eq!(d.bytes, 1e9);
        // ~3.7 GB/s single-core cap at 140 ns.
        assert!(d.self_cap > 3.0e9 && d.self_cap < 4.5e9);
    }

    #[test]
    fn random_is_amplified_and_latency_bound() {
        let p = TrafficProfile::random(1e8, 1e9);
        let d = dram_demand(&k8(), &p, LAT);
        assert!(d.bytes > 6.0e8, "8x line amplification expected, got {}", d.bytes);
        assert!(d.self_cap < 1.0e9, "random cap should be far below stream cap");
    }

    #[test]
    fn blocked_divides_by_reuse() {
        let p = TrafficProfile::blocked(1e9, 1e8, 50.0);
        let d = dram_demand(&k8(), &p, LAT);
        assert!((d.bytes - 2e7).abs() < 1.0);
    }

    #[test]
    fn higher_latency_lowers_cap() {
        let p = TrafficProfile::stream(1e9);
        let near = dram_demand(&k8(), &p, 140e-9);
        let far = dram_demand(&k8(), &p, 275e-9);
        assert!(far.self_cap < near.self_cap * 0.6);
    }

    #[test]
    fn zero_traffic_has_zero_bytes() {
        let d = dram_demand(&k8(), &TrafficProfile::none(), LAT);
        assert_eq!(d.bytes, 0.0);
    }

    #[test]
    fn lookup_is_line_granular_and_between_random_and_stream() {
        let p = TrafficProfile::lookup(1e8, 1e9);
        let d = dram_demand(&k8(), &p, LAT);
        // No ×8 amplification: bytes shrink only by the resident slice.
        let hit = calib::L2_BYTES / 1e9;
        assert!((d.bytes - 1e8 * (1.0 - hit)).abs() < 1.0);
        let random = dram_demand(&k8(), &TrafficProfile::random(1e8, 1e9), LAT);
        let stream = dram_demand(&k8(), &TrafficProfile::stream(1e8), LAT);
        assert!(d.self_cap > random.self_cap && d.self_cap < stream.self_cap);
    }

    #[test]
    fn random_fully_resident_table_is_cheap() {
        let p = TrafficProfile::random(1e8, 512.0 * 1024.0);
        let d = dram_demand(&k8(), &p, LAT);
        assert!(d.bytes <= 512.0 * 1024.0);
    }
}
