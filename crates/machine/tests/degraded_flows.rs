//! Property tests for the max-min solver under degraded capacities.
//!
//! These pin down what fault injection is allowed to do to flow rates:
//! degrading a resource never lets the solution oversubscribe anything,
//! never speeds up the flows that cross the degraded resource, kills
//! exactly the crossing flows when capacity hits zero, and is fully
//! undone by restoring the original capacity.

use corescope_machine::flow::{solve_maxmin, FlowSpec, ResourceTable};
use proptest::prelude::*;

/// Builds a resource table plus flow specs from generated raw parts.
/// Route entries are taken modulo the table size so every generated
/// index is valid.
fn build(caps: &[f64], flows: &[(Vec<usize>, f64)]) -> (ResourceTable, Vec<FlowSpec>) {
    let mut table = ResourceTable::new();
    for (i, &c) in caps.iter().enumerate() {
        table.add(format!("r{i}"), c);
    }
    let specs = flows
        .iter()
        .map(|(route, cap)| {
            let mut route: Vec<usize> = route.iter().map(|&r| r % caps.len()).collect();
            route.sort_unstable();
            route.dedup();
            FlowSpec::new(route, *cap)
        })
        .collect();
    (table, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Degrading any one resource keeps the solution feasible: no
    /// resource over its (new) capacity, no flow over its own cap.
    #[test]
    fn degraded_solutions_stay_feasible(
        caps in proptest::collection::vec(1.0f64..1e3, 1..6),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 0.1f64..1e3),
            1..10,
        ),
        target in 0usize..6,
        factor in 0.0f64..1.0,
    ) {
        let (mut table, specs) = build(&caps, &flows);
        let target = target % caps.len();
        table.set_capacity(target, caps[target] * factor);
        let rates = solve_maxmin(&table, &specs).unwrap();
        let mut used = vec![0.0; caps.len()];
        for (spec, &rate) in specs.iter().zip(&rates) {
            prop_assert!(rate >= 0.0);
            prop_assert!(rate <= spec.cap * (1.0 + 1e-9));
            for &r in &spec.route {
                used[r] += rate;
            }
        }
        for (r, &u) in used.iter().enumerate() {
            let cap = if r == target { caps[r] * factor } else { caps[r] };
            prop_assert!(u <= cap * (1.0 + 1e-9) + 1e-12, "resource {r}: {u} > {cap}");
        }
    }

    /// A flow routed *through* the degraded resource never gets faster.
    ///
    /// Deliberately scoped: global monotonicity is false for max-min
    /// fairness — degrading a resource can freeze its flows earlier,
    /// freeing share on *other* resources, so flows that avoid the
    /// degraded resource may legitimately speed up.
    #[test]
    fn degrading_a_resource_never_speeds_up_the_flows_crossing_it(
        caps in proptest::collection::vec(1.0f64..1e3, 1..6),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 0.1f64..1e3),
            1..10,
        ),
        target in 0usize..6,
        factor in 0.0f64..1.0,
    ) {
        let (mut table, specs) = build(&caps, &flows);
        let target = target % caps.len();
        let healthy = solve_maxmin(&table, &specs).unwrap();
        table.set_capacity(target, caps[target] * factor);
        let degraded = solve_maxmin(&table, &specs).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            if spec.route.contains(&target) {
                prop_assert!(
                    degraded[i] <= healthy[i] * (1.0 + 1e-9) + 1e-12,
                    "flow {i} through degraded r{target} sped up: {} -> {}",
                    healthy[i],
                    degraded[i]
                );
            }
        }
    }

    /// Killing a resource starves exactly the flows crossing it; every
    /// other flow keeps a strictly positive rate.
    #[test]
    fn killed_resource_starves_exactly_its_flows(
        caps in proptest::collection::vec(1.0f64..1e3, 1..6),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 0.1f64..1e3),
            1..10,
        ),
        target in 0usize..6,
    ) {
        let (mut table, specs) = build(&caps, &flows);
        let target = target % caps.len();
        table.set_capacity(target, 0.0);
        let rates = solve_maxmin(&table, &specs).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            if spec.route.contains(&target) {
                prop_assert_eq!(rates[i], 0.0, "flow {} crosses the dead resource", i);
            } else {
                prop_assert!(rates[i] > 0.0, "flow {} avoids the dead resource", i);
            }
        }
    }

    /// Restoring the original capacity restores the original solution
    /// exactly (the solver is deterministic, and restores use nominal
    /// capacities, so nothing compounds).
    #[test]
    fn restore_recovers_the_healthy_solution(
        caps in proptest::collection::vec(1.0f64..1e3, 1..6),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 0.1f64..1e3),
            1..10,
        ),
        target in 0usize..6,
        factor in 0.0f64..1.0,
    ) {
        let (mut table, specs) = build(&caps, &flows);
        let target = target % caps.len();
        let healthy = solve_maxmin(&table, &specs).unwrap();
        table.set_capacity(target, caps[target] * factor);
        let _degraded = solve_maxmin(&table, &specs).unwrap();
        table.set_capacity(target, caps[target]);
        let restored = solve_maxmin(&table, &specs).unwrap();
        prop_assert_eq!(healthy, restored);
    }
}
