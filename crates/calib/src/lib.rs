//! # corescope-calib
//!
//! The calibration subsystem: grades any [`CalibParams`] point against
//! the paper-target registry, searches the parameter box for the point
//! that reproduces the paper, and ranks parameters by influence.
//!
//! Four layers:
//!
//! * [`targets`] — the ~30 scalar targets EXPERIMENTS.md records (with
//!   provenance, tolerance, and the [`targets::Probe`] predicting each
//!   from a parameter point);
//! * [`eval`] — the batched [`eval::Evaluator`]: one
//!   [`corescope_sched::Scheduler::run_batch`] per candidate point, so
//!   a repeated evaluation is pure cache hits;
//! * [`search`] — deterministic Nelder–Mead plus coordinate-descent
//!   polish under an explicit evaluation budget;
//! * [`sensitivity`] — Morris-style elementary effects, plus the
//!   [`targets::Observable`] sweeps the harness ablation tables are
//!   thin wrappers over.
//!
//! ```
//! use corescope_calib::eval::Evaluator;
//! use corescope_calib::targets::Family;
//! use corescope_machine::CalibParams;
//! use corescope_sched::{Fidelity, Scheduler};
//!
//! let sched = Scheduler::new(2);
//! let eval = Evaluator::with_families(&sched, Fidelity::Quick, &[Family::Latency]);
//! let graded = eval.evaluate(&CalibParams::paper_2006()).unwrap();
//! assert!(graded.misses().is_empty(), "the shipped point hits every latency plateau");
//! ```

pub mod eval;
pub mod search;
pub mod sensitivity;
pub mod targets;

pub use corescope_machine::{CalibParams, Error, ParamField, Result};
pub use eval::{Evaluation, Evaluator, TargetOutcome};
pub use search::{fit, FitConfig, FitResult, TrajectoryPoint};
pub use sensitivity::{elementary_effects, observe, ranking, sweep_field, Effect};
pub use targets::{registry, Family, Observable, Probe, Target, TargetKind};

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::policy;
    use corescope_smpi::{LockLayer, MpiProfile};

    /// The paper point must equal the constants it mirrors in the smpi
    /// and affinity crates — if one side drifts, default-parameter runs
    /// silently stop matching the shipped calibration.
    #[test]
    fn paper_point_matches_smpi_and_affinity_constants() {
        let p = CalibParams::paper_2006();
        assert_eq!(p.lock_sysv.to_bits(), LockLayer::SysV.cost().to_bits());
        assert_eq!(p.lock_usysv.to_bits(), LockLayer::USysV.cost().to_bits());
        assert_eq!(p.same_socket_boost.to_bits(), MpiProfile::SAME_SOCKET_BW_BOOST.to_bits());
        assert_eq!(p.misplacement.to_bits(), policy::DEFAULT_MISPLACEMENT.to_bits());
    }
}
