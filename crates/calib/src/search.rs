//! Derivative-free calibration search.
//!
//! Nelder–Mead over the selected axes (normalized to the unit box, with
//! clamping), followed by a bounded coordinate-descent polish that
//! spends whatever evaluation budget remains. Fully deterministic: the
//! only randomness is a seeded [`SmallRng`] jittering the initial
//! simplex, and nothing reads the wall clock.

use crate::eval::Evaluator;
use crate::Result;
use corescope_machine::CalibParams;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Search configuration.
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Axes to fit (indices into [`CalibParams::FIELDS`]); every other
    /// field is pinned at its starting value.
    pub axes: Vec<usize>,
    /// Maximum number of [`Evaluator::evaluate`] calls.
    pub budget: usize,
    /// RNG seed for the initial-simplex jitter.
    pub seed: u64,
    /// Converged when the best score drops below this.
    pub tolerance: f64,
}

impl FitConfig {
    /// Fits `axes` with a 60-evaluation budget (the CI smoke budget).
    pub fn new(axes: Vec<usize>) -> Self {
        Self { axes, budget: 60, seed: 0x5ca1ab1e, tolerance: 1e-4 }
    }

    /// Sets the evaluation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }
}

/// One point on the best-score trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// 1-based evaluation index.
    pub evaluation: usize,
    /// Best score seen so far.
    pub best_score: f64,
}

/// The result of a fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Where the search started.
    pub start: CalibParams,
    /// The best point found.
    pub fitted: CalibParams,
    /// Score at the start.
    pub start_score: f64,
    /// Score at the best point.
    pub best_score: f64,
    /// Evaluations spent.
    pub evaluations: usize,
    /// Best-score-so-far after each evaluation.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Whether the best score dropped below the configured tolerance.
    pub converged: bool,
}

/// Search state shared by the two phases: budget accounting, the
/// incumbent, and the normalized coordinate maps.
struct Search<'a, 's> {
    eval: &'a Evaluator<'s>,
    config: &'a FitConfig,
    base: CalibParams,
    evaluations: usize,
    trajectory: Vec<TrajectoryPoint>,
    best: (Vec<f64>, f64),
}

impl Search<'_, '_> {
    /// Denormalizes a unit-box point into a full parameter set.
    fn params_at(&self, x: &[f64]) -> CalibParams {
        let mut p = self.base;
        for (&axis, &xi) in self.config.axes.iter().zip(x) {
            let f = &CalibParams::FIELDS[axis];
            f.write(&mut p, f.lo + xi.clamp(0.0, 1.0) * (f.hi - f.lo));
        }
        p
    }

    fn budget_left(&self) -> bool {
        self.evaluations < self.config.budget
    }

    /// Scores a unit-box point, charging the budget and updating the
    /// incumbent and trajectory.
    fn score(&mut self, x: &[f64]) -> Result<f64> {
        let p = self.params_at(x);
        let graded = self.eval.evaluate(&p)?;
        self.evaluations += 1;
        if graded.total < self.best.1 {
            self.best = (x.iter().map(|v| v.clamp(0.0, 1.0)).collect(), graded.total);
        }
        self.trajectory
            .push(TrajectoryPoint { evaluation: self.evaluations, best_score: self.best.1 });
        Ok(graded.total)
    }

    fn converged(&self) -> bool {
        self.best.1 <= self.config.tolerance
    }
}

/// Fits the configured axes to the evaluator's targets, starting from
/// `start` (out-of-bounds starts are clamped into the box).
///
/// # Errors
///
/// Propagates engine errors from candidate evaluations.
pub fn fit(eval: &Evaluator<'_>, start: CalibParams, config: &FitConfig) -> Result<FitResult> {
    assert!(!config.axes.is_empty(), "fit needs at least one axis");
    assert!(config.budget >= 2 * (config.axes.len() + 1), "budget too small for a simplex");
    let start = start.clamped();
    let x0: Vec<f64> = config
        .axes
        .iter()
        .map(|&axis| {
            let f = &CalibParams::FIELDS[axis];
            (f.read(&start) - f.lo) / (f.hi - f.lo)
        })
        .collect();

    let mut search = Search {
        eval,
        config,
        base: start,
        evaluations: 0,
        trajectory: Vec::new(),
        best: (x0.clone(), f64::INFINITY),
    };
    let start_score = search.score(&x0)?;

    nelder_mead(&mut search, &x0)?;
    coordinate_polish(&mut search)?;

    let fitted = search.params_at(&search.best.0.clone());
    let converged = search.converged();
    Ok(FitResult {
        start,
        fitted,
        start_score,
        best_score: search.best.1,
        evaluations: search.evaluations,
        trajectory: search.trajectory,
        converged,
    })
}

/// Standard Nelder–Mead (reflection/expansion/contraction/shrink) on the
/// unit box. Spends at most ~70% of the budget, leaving room for the
/// polish phase.
fn nelder_mead(search: &mut Search<'_, '_>, x0: &[f64]) -> Result<()> {
    let n = x0.len();
    let phase_cap = (search.config.budget * 7) / 10;
    let mut rng = SmallRng::seed_from_u64(search.config.seed);

    // Initial simplex: x0 plus one jittered step per axis, reflected
    // back inside the box when a step would leave it.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), search.best.1));
    for i in 0..n {
        let mut x = x0.to_vec();
        let step = 0.15 * rng.gen_range(0.8..1.2);
        x[i] = if x[i] + step <= 1.0 { x[i] + step } else { x[i] - step };
        let s = search.score(&x)?;
        simplex.push((x, s));
        if search.converged() {
            return Ok(());
        }
    }

    while search.evaluations < phase_cap && search.budget_left() && !search.converged() {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let worst = simplex[n].clone();
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let blend = |a: f64| -> Vec<f64> {
            centroid.iter().zip(&worst.0).map(|(c, w)| (c + a * (c - w)).clamp(0.0, 1.0)).collect()
        };

        let reflected = blend(1.0);
        let fr = search.score(&reflected)?;
        if fr < simplex[0].1 && search.budget_left() {
            // Try to expand past the reflection.
            let expanded = blend(2.0);
            let fe = search.score(&expanded)?;
            simplex[n] = if fe < fr { (expanded, fe) } else { (reflected, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflected, fr);
        } else if search.budget_left() {
            let contracted = blend(-0.5);
            let fc = search.score(&contracted)?;
            if fc < worst.1 {
                simplex[n] = (contracted, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    if !search.budget_left() || search.converged() {
                        break;
                    }
                    let x: Vec<f64> =
                        vertex.0.iter().zip(&best).map(|(v, b)| b + 0.5 * (v - b)).collect();
                    let s = search.score(&x)?;
                    *vertex = (x, s);
                }
            }
        }
    }
    Ok(())
}

/// Bounded coordinate descent from the incumbent: per axis, probe ± a
/// shrinking step and keep improvements. Spends the rest of the budget.
fn coordinate_polish(search: &mut Search<'_, '_>) -> Result<()> {
    let n = search.config.axes.len();
    let mut step = 0.05;
    while search.budget_left() && !search.converged() && step > 1e-5 {
        let mut improved = false;
        for i in 0..n {
            for dir in [1.0, -1.0] {
                if !search.budget_left() || search.converged() {
                    return Ok(());
                }
                let mut x = search.best.0.clone();
                x[i] = (x[i] + dir * step).clamp(0.0, 1.0);
                let before = search.best.1;
                search.score(&x)?;
                if search.best.1 < before {
                    improved = true;
                    break; // re-probe this axis at the new incumbent
                }
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::Family;
    use corescope_sched::{Fidelity, Scheduler};

    fn axis(name: &str) -> usize {
        CalibParams::FIELDS.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn fit_recovers_dram_latency_from_latency_targets() {
        // Analytic targets only: fast, and exactly identified.
        let s = Scheduler::new(1);
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let mut start = CalibParams::paper_2006();
        start.dram_latency *= 1.3;
        let config = FitConfig::new(vec![axis("dram_latency")]).with_budget(40);
        let fit = fit(&eval, start, &config).unwrap();
        assert!(fit.converged, "best score {}", fit.best_score);
        let rel = (fit.fitted.dram_latency - 70e-9).abs() / 70e-9;
        assert!(rel < 0.02, "fitted {} vs shipped 70ns", fit.fitted.dram_latency);
        assert!(fit.best_score < fit.start_score);
        assert_eq!(s.stats().engine_runs, 0, "latency-only fits are analytic");
    }

    #[test]
    fn fit_is_deterministic() {
        let s = Scheduler::new(1);
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let mut start = CalibParams::paper_2006();
        start.dram_latency *= 0.7;
        let config = FitConfig::new(vec![axis("dram_latency")]).with_budget(30);
        let a = fit(&eval, start, &config).unwrap();
        let b = fit(&eval, start, &config).unwrap();
        assert_eq!(a.fitted.dram_latency.to_bits(), b.fitted.dram_latency.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn budget_is_respected_and_trajectory_is_monotone() {
        let s = Scheduler::new(1);
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let mut start = CalibParams::paper_2006();
        start.dram_latency = 150e-9;
        start.ht_hop_latency = 100e-9;
        let config = FitConfig {
            axes: vec![axis("dram_latency"), axis("ht_hop_latency")],
            budget: 25,
            seed: 7,
            tolerance: 0.0, // never converges: must stop on budget
        };
        let r = fit(&eval, start, &config).unwrap();
        assert!(r.evaluations <= 25);
        assert_eq!(r.trajectory.len(), r.evaluations);
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_score <= w[0].best_score, "best-so-far must never rise");
        }
        // Unfitted fields stay pinned at the start.
        assert_eq!(r.fitted.ht_bandwidth.to_bits(), r.start.ht_bandwidth.to_bits());
    }

    #[test]
    fn out_of_bounds_start_is_clamped() {
        let s = Scheduler::new(1);
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let mut start = CalibParams::paper_2006();
        start.dram_latency = 1.0; // absurd
        let config = FitConfig::new(vec![axis("dram_latency")]).with_budget(30);
        let r = fit(&eval, start, &config).unwrap();
        assert!(r.start.in_bounds());
        assert!(r.fitted.in_bounds());
    }
}
