//! Batched evaluation of a calibration point against the target
//! registry.
//!
//! All engine scenarios across all targets are collected into ONE
//! [`Scheduler::run_batch`] call, so a candidate point is evaluated with
//! maximal work-stealing parallelism and in-flight deduplication, and a
//! repeated evaluation (same point, warm cache) performs zero engine
//! runs.

use crate::targets::{self, Family, Target};
use crate::Result;
use corescope_machine::CalibParams;
use corescope_sched::{Fidelity, Scheduler};
use std::collections::HashMap;

/// The outcome of grading one target at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetOutcome {
    /// Target id.
    pub id: &'static str,
    /// Target family.
    pub family: Family,
    /// Predicted value, in the target's units.
    pub predicted: f64,
    /// Signed (equality) or hinge (inequality) relative error.
    pub rel_err: f64,
    /// Weighted squared relative error.
    pub score: f64,
    /// Whether the prediction lands inside the tolerance/bound.
    pub satisfied: bool,
}

/// A graded parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The evaluated point.
    pub params: CalibParams,
    /// Sum of all per-target scores.
    pub total: f64,
    /// Per-target breakdown, in registry order.
    pub outcomes: Vec<TargetOutcome>,
}

impl Evaluation {
    /// Sum of the scores of one family.
    pub fn family_score(&self, family: Family) -> f64 {
        self.outcomes.iter().filter(|o| o.family == family).map(|o| o.score).sum()
    }

    /// Per-family score totals, in [`Family::all`] order.
    pub fn family_scores(&self) -> Vec<(Family, f64)> {
        Family::all().into_iter().map(|f| (f, self.family_score(f))).collect()
    }

    /// Targets whose predictions violate their tolerance/bound.
    pub fn misses(&self) -> Vec<&TargetOutcome> {
        self.outcomes.iter().filter(|o| !o.satisfied).collect()
    }
}

/// Evaluates calibration points against a target set by batching every
/// engine scenario through a [`Scheduler`].
pub struct Evaluator<'s> {
    sched: &'s Scheduler,
    fidelity: Fidelity,
    targets: Vec<Target>,
}

impl<'s> Evaluator<'s> {
    /// An evaluator over the full registry.
    pub fn new(sched: &'s Scheduler, fidelity: Fidelity) -> Self {
        Self::with_targets(sched, fidelity, targets::registry())
    }

    /// An evaluator over an explicit target set (e.g. the fit subset).
    pub fn with_targets(sched: &'s Scheduler, fidelity: Fidelity, targets: Vec<Target>) -> Self {
        Self { sched, fidelity, targets }
    }

    /// An evaluator restricted to the given families.
    pub fn with_families(sched: &'s Scheduler, fidelity: Fidelity, families: &[Family]) -> Self {
        let targets =
            targets::registry().into_iter().filter(|t| families.contains(&t.family)).collect();
        Self::with_targets(sched, fidelity, targets)
    }

    /// The target set being graded.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// The fidelity scenarios are enumerated at.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Grades one parameter point: enumerates every target's scenarios,
    /// runs them as a single batch, reduces and scores.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (an unplaceable probe or an invalid
    /// parameter point fails the whole evaluation).
    pub fn evaluate(&self, params: &CalibParams) -> Result<Evaluation> {
        // Enumerate all observables, remembering each target's slice.
        let mut batch = Vec::new();
        let mut spans = Vec::with_capacity(self.targets.len());
        for target in &self.targets {
            let obs = target.probe.observables(params, self.fidelity);
            let start = batch.len();
            batch.extend(obs);
            spans.push(start..batch.len());
        }

        let scenarios: Vec<_> = batch.iter().map(|o| o.scenario.clone()).collect();
        let completed = self.sched.run_batch(&scenarios);
        let mut reduced = Vec::with_capacity(batch.len());
        for (obs, outcome) in batch.iter().zip(completed) {
            reduced.push(obs.reduce.apply(outcome?.result.makespan));
        }

        let mut outcomes = Vec::with_capacity(self.targets.len());
        let mut total = 0.0;
        for (target, span) in self.targets.iter().zip(spans) {
            let predicted = target.probe.predict(params, &reduced[span])?;
            let rel_err = target.rel_err(predicted);
            let score = target.score(predicted);
            total += score;
            outcomes.push(TargetOutcome {
                id: target.id,
                family: target.family,
                predicted,
                rel_err,
                score,
                satisfied: target.satisfied(predicted),
            });
        }
        Ok(Evaluation { params: *params, total, outcomes })
    }
}

/// A map from target id to predicted value, for report code.
pub fn predictions(eval: &Evaluation) -> HashMap<&'static str, f64> {
    eval.outcomes.iter().map(|o| (o.id, o.predicted)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::Family;

    fn sched() -> Scheduler {
        Scheduler::new(2)
    }

    #[test]
    fn latency_family_needs_no_engine_runs() {
        let s = sched();
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let graded = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        assert_eq!(s.stats().engine_runs, 0, "analytic probes must not hit the engine");
        assert_eq!(graded.outcomes.len(), 6);
        // The plateaus are exact at the shipped point.
        for o in &graded.outcomes {
            assert!(o.satisfied, "{}: predicted {}", o.id, o.predicted);
            assert!(o.rel_err.abs() < 1e-9, "{}: rel {}", o.id, o.rel_err);
        }
    }

    #[test]
    fn shipped_point_satisfies_stream_targets() {
        let s = sched();
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Stream]);
        let graded = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        for o in &graded.outcomes {
            assert!(o.satisfied, "{}: predicted {:.4}", o.id, o.predicted);
        }
        assert!(graded.total < 0.05, "near-zero residual at shipped: {}", graded.total);
    }

    #[test]
    fn perturbed_point_scores_worse_and_misses_targets() {
        let s = sched();
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Stream]);
        let shipped = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        let mut p = CalibParams::paper_2006();
        p.dram_latency *= 1.25;
        let perturbed = eval.evaluate(&p).unwrap();
        assert!(perturbed.total > 4.0 * shipped.total.max(1e-6));
        assert!(!perturbed.misses().is_empty());
    }

    #[test]
    fn repeated_evaluation_is_fully_cached() {
        let s = sched();
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Stream]);
        let a = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        let runs = s.stats().engine_runs;
        let b = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        assert_eq!(s.stats().engine_runs, runs, "second evaluation must be pure cache hits");
        assert_eq!(a, b);
    }

    #[test]
    fn family_scores_partition_the_total() {
        let s = sched();
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let graded = eval.evaluate(&CalibParams::paper_2006()).unwrap();
        let sum: f64 = graded.family_scores().iter().map(|(_, v)| v).sum();
        assert!((sum - graded.total).abs() < 1e-12);
        let _ = predictions(&graded);
    }
}
