//! The paper-target registry: every scalar the calibration is graded
//! against, with provenance, tolerance, and a [`Probe`] that knows how
//! to predict it from a [`CalibParams`] point.
//!
//! Values come from the per-artifact "paper vs. measured" columns in
//! `EXPERIMENTS.md` (and are re-asserted against the X7 registry table
//! there by a golden test). Two kinds of rows exist:
//!
//! * **paper** rows — the paper's own numbers (STREAM plateaus, the IMB
//!   latency ladder, the NAS scheme ratios, the X2 latency plateaus);
//! * **model** rows — anchors recorded from the shipped calibration
//!   where the paper gives a shape but no scalar (the DMZ membind
//!   remote-stream anchor that pins the HyperTransport bandwidth).

use crate::{Error, Result};
use corescope_kernels::blas::{BlasVariant, DaxpyParams, DgemmParams};
use corescope_kernels::cg::CgClass;
use corescope_kernels::nasft::FtClass;
use corescope_kernels::stream::StreamParams;
use corescope_machine::{CalibParams, CoreId, NumaNodeId};
use corescope_sched::{Fidelity, Placement, Scenario, System, Workload};
use corescope_smpi::{LockLayer, MpiImpl};
use std::fmt;

/// Target families, used to group scores and sensitivity rankings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// STREAM triad bandwidth (Figures 2/3 and the Longs headline).
    Stream,
    /// DGEMM/DAXPY throughput (Figures 4–7).
    Blas,
    /// IMB PingPong latency and bandwidth (Figures 13/14/16).
    PingPong,
    /// Analytic load-to-use latency plateaus (Extra X2).
    Latency,
    /// NAS CG/FT scheme ratios (Table 2).
    Nas,
    /// XSBench-style cross-section lookup rates (Extra X10): the
    /// latency-bound irregular-read anchors that pin the lookup
    /// concurrency and row-buffer-miss surcharge.
    Lookup,
    /// Modern-generation anchors (Extra X11): the chiplet-latency and
    /// memory-tier-bandwidth scalars that pin the four `corescope-topo`
    /// axes, transcribed from the Bergstrom and RZBENCH measurements.
    Topo,
    /// The paper's headline inequalities.
    Headline,
}

impl Family {
    /// All families, in registry order.
    pub fn all() -> [Family; 8] {
        [
            Family::Stream,
            Family::Blas,
            Family::PingPong,
            Family::Latency,
            Family::Nas,
            Family::Lookup,
            Family::Topo,
            Family::Headline,
        ]
    }

    /// Stable lowercase key (report labels and JSON).
    pub fn key(self) -> &'static str {
        match self {
            Family::Stream => "stream",
            Family::Blas => "blas",
            Family::PingPong => "pingpong",
            Family::Latency => "latency",
            Family::Nas => "nas",
            Family::Lookup => "lookup",
            Family::Topo => "topo",
            Family::Headline => "headline",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// What "hitting" a target means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetKind {
    /// The prediction should equal `value` within relative `tol`.
    Equal {
        /// Target value (units per target description).
        value: f64,
        /// Relative tolerance for [`Target::satisfied`].
        tol: f64,
    },
    /// The prediction must stay at or below `bound` (headline
    /// inequalities; only violations score).
    AtMost {
        /// Upper bound.
        bound: f64,
    },
    /// The prediction must stay at or above `bound`.
    AtLeast {
        /// Lower bound.
        bound: f64,
    },
}

/// Where a target's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A number printed in the paper (as recorded in EXPERIMENTS.md).
    Paper,
    /// A model-derived anchor recorded from the shipped calibration.
    Model,
}

impl Provenance {
    /// Stable lowercase key.
    pub fn key(self) -> &'static str {
        match self {
            Provenance::Paper => "paper",
            Provenance::Model => "model",
        }
    }
}

/// How a scalar prediction is reduced from a scenario's makespan.
///
/// The arithmetic (operand order included) mirrors the artifact code
/// each target was lifted from, so that shipped-parameter predictions
/// are bit-identical to the published tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reduction {
    /// The raw makespan, seconds.
    Makespan,
    /// `total_bytes / makespan`, bytes/s (STREAM aggregate).
    AggregateBandwidth {
        /// Total bytes moved across all ranks.
        total_bytes: f64,
    },
    /// `total_flops / makespan / 1e9`, GFlop/s (BLAS star).
    GigaFlops {
        /// Total flops across all ranks.
        total_flops: f64,
    },
    /// `makespan / (2 * reps)`, seconds — IMB PingPong one-way time.
    PingPongLatency {
        /// Round trips.
        reps: usize,
    },
    /// `bytes / (makespan / (2 * reps))`, bytes/s.
    PingPongBandwidth {
        /// Payload bytes per direction.
        bytes: f64,
        /// Round trips.
        reps: usize,
    },
}

impl Reduction {
    /// Applies the reduction to a makespan.
    pub fn apply(self, makespan: f64) -> f64 {
        match self {
            Reduction::Makespan => makespan,
            Reduction::AggregateBandwidth { total_bytes } => total_bytes / makespan,
            Reduction::GigaFlops { total_flops } => total_flops / makespan / 1e9,
            Reduction::PingPongLatency { reps } => makespan / (2.0 * reps as f64),
            Reduction::PingPongBandwidth { bytes, reps } => {
                bytes / (makespan / (2.0 * reps as f64))
            }
        }
    }
}

/// One engine scenario plus the reduction turning its makespan into a
/// scalar observable — the unit the sensitivity sweeps (and the ablation
/// tables built on them) work in.
#[derive(Debug, Clone, PartialEq)]
pub struct Observable {
    /// The fully resolved scenario (carries its own [`CalibParams`]).
    pub scenario: Scenario,
    /// The makespan-to-scalar reduction.
    pub reduce: Reduction,
}

impl Observable {
    /// The observable re-targeted at a different calibration point.
    #[must_use]
    pub fn at(&self, params: CalibParams) -> Observable {
        Observable { scenario: self.scenario.clone().with_params(params), reduce: self.reduce }
    }
}

/// How a target's prediction is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// STREAM triad bandwidth in GB/s, scatter-local activation order
    /// (Figures 2/3); aggregate or per-core.
    StreamBw {
        /// System under test.
        system: System,
        /// Active cores.
        nranks: usize,
        /// Divide the aggregate by `nranks`.
        per_core: bool,
    },
    /// Star DGEMM GFlop/s per core on DMZ, packed placement (Figure 6/7
    /// at n = 1000).
    DgemmPerCore {
        /// ACML or vanilla.
        variant: BlasVariant,
        /// Concurrent ranks.
        nranks: usize,
    },
    /// Star DAXPY GFlop/s per core on DMZ at n = 10M — out of cache,
    /// bandwidth-bound (Figure 4/5).
    DaxpyPerCore {
        /// ACML or vanilla.
        variant: BlasVariant,
        /// Concurrent ranks.
        nranks: usize,
    },
    /// IMB PingPong one-way latency in µs (Figure 14 layout: DMZ, two
    /// unbound ranks — or Figure 13's Longs sweep when `system` says so).
    PingPongLatencyUs {
        /// System under test.
        system: System,
        /// World size (the probe still ping-pongs ranks 0 and 1).
        nranks: usize,
        /// MPI implementation.
        mpi: MpiImpl,
        /// Lock sub-layer.
        lock: LockLayer,
        /// Payload bytes.
        bytes: f64,
    },
    /// IMB PingPong bandwidth in GB/s (Figure 14b).
    PingPongBwGbs {
        /// MPI implementation.
        mpi: MpiImpl,
        /// Payload bytes.
        bytes: f64,
    },
    /// Same-socket : cross-socket PingPong bandwidth ratio on DMZ at
    /// 1 MB (Figures 16/17's binding benefit).
    PingPongBoostRatio,
    /// Analytic load-to-use latency in ns from core 0 to a node
    /// (`None` = the farthest node), Extra X2. Costs no engine run.
    MemoryLatencyNs {
        /// System under test.
        system: System,
        /// NUMA node, or `None` for the farthest.
        node: Option<usize>,
    },
    /// NAS class-B time ratio between two schemes on Longs (Table 2).
    NasSchemeRatio {
        /// CG or FT.
        workload: NasWorkload,
        /// Ranks.
        nranks: usize,
        /// Numerator scheme.
        num: Placement,
        /// Denominator scheme.
        den: Placement,
    },
    /// Star STREAM per-core bandwidth in GB/s under an explicit scheme —
    /// the membind remote-stream anchor that pins `ht_bandwidth`.
    SchemeStreamBw {
        /// System under test.
        system: System,
        /// Ranks.
        nranks: usize,
        /// Placement scheme.
        placement: Placement,
    },
    /// Single-core XSBench-style lookup rate in Mlookups/s with a local
    /// (first-touch) table. Latency-bound dependent reads: the rate is
    /// `lookup_mlp`-proportional and `1/(base latency + lookup_latency)`-
    /// proportional, so the DMZ (140 ns base) / Longs (275 ns base) pair
    /// gives two independent equations that identify both new axes.
    XsLookupRate {
        /// System under test.
        system: System,
    },
}

/// Unionized grid points of the lookup-rate probe's table: ~1.35 GiB at
/// 64 nuclides — far out of cache, yet within one node's usable share on
/// both DMZ and Longs, so a single rank's table stays fully local.
pub const XS_PROBE_GRID: u64 = 1 << 19;
/// Nuclides of the lookup-rate probe's material.
pub const XS_PROBE_NUCLIDES: u64 = 64;
/// Lookups the probe's rank performs. The modeled rate is independent of
/// this count (one fluid phase either way), so it needs no fidelity
/// scaling.
pub const XS_PROBE_LOOKUPS: u64 = 1 << 20;

/// The NAS workloads a [`Probe::NasSchemeRatio`] can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasWorkload {
    /// Conjugate gradient, class B.
    CgB,
    /// 3-D FFT, class B.
    FtB,
}

impl NasWorkload {
    fn workload(self) -> Workload {
        match self {
            NasWorkload::CgB => Workload::NasCg { class: CgClass::B },
            NasWorkload::FtB => Workload::NasFt { class: FtClass::B },
        }
    }
}

fn stream_params(fidelity: Fidelity) -> StreamParams {
    // Mirrors harness::artifacts::stream::params.
    StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() }
}

fn stream_star(fidelity: Fidelity) -> Workload {
    let p = stream_params(fidelity);
    Workload::StreamStar {
        kernel: p.kernel,
        elements_per_rank: p.elements_per_rank,
        sweeps: p.sweeps,
    }
}

/// IMB repetition count, mirroring `harness::artifacts::imb::reps`.
fn imb_reps(fidelity: Fidelity, bytes: f64) -> usize {
    let base = if bytes >= 1e6 { 4 } else { 40 };
    fidelity.steps(base).max(2)
}

impl Probe {
    /// The engine scenarios this probe needs, paired with reductions.
    /// Analytic probes return an empty list.
    pub fn observables(&self, params: &CalibParams, fidelity: Fidelity) -> Vec<Observable> {
        let at = |s: Scenario, reduce: Reduction| Observable {
            scenario: s.with_fidelity(fidelity).with_params(*params),
            reduce,
        };
        match *self {
            Probe::StreamBw { system, nranks, .. } => {
                let p = stream_params(fidelity);
                vec![at(
                    Scenario::new(system, nranks, stream_star(fidelity))
                        .with_placement(Placement::ScatterLocal)
                        .with_mpi(MpiImpl::Lam),
                    Reduction::AggregateBandwidth {
                        total_bytes: nranks as f64 * p.bytes_per_rank(),
                    },
                )]
            }
            Probe::SchemeStreamBw { system, nranks, placement } => {
                let p = stream_params(fidelity);
                vec![at(
                    Scenario::new(system, nranks, stream_star(fidelity))
                        .with_placement(placement)
                        .with_mpi(MpiImpl::Lam),
                    Reduction::AggregateBandwidth {
                        total_bytes: nranks as f64 * p.bytes_per_rank(),
                    },
                )]
            }
            Probe::DgemmPerCore { variant, nranks } => {
                let p = DgemmParams { n: 1000, reps: fidelity.steps(3).max(1), variant };
                vec![at(
                    Scenario::new(
                        System::Dmz,
                        nranks,
                        Workload::DgemmStar { n: p.n, reps: p.reps, variant },
                    )
                    .with_mpi(MpiImpl::Mpich2),
                    Reduction::GigaFlops { total_flops: nranks as f64 * p.flops_per_rank() },
                )]
            }
            Probe::DaxpyPerCore { variant, nranks } => {
                let p = DaxpyParams { n: 10_000_000, reps: fidelity.steps(50).max(2), variant };
                vec![at(
                    Scenario::new(
                        System::Dmz,
                        nranks,
                        Workload::DaxpyStar { n: p.n, reps: p.reps, variant },
                    )
                    .with_mpi(MpiImpl::Mpich2),
                    Reduction::GigaFlops { total_flops: nranks as f64 * p.flops_per_rank() },
                )]
            }
            Probe::PingPongLatencyUs { system, nranks, mpi, lock, bytes } => {
                let reps = imb_reps(fidelity, bytes);
                vec![at(
                    Scenario::new(system, nranks, Workload::PingPong { bytes, reps })
                        .with_placement(Placement::Scheme(corescope_affinity::Scheme::Default))
                        .with_mpi(mpi)
                        .with_lock(lock),
                    Reduction::PingPongLatency { reps },
                )]
            }
            Probe::PingPongBwGbs { mpi, bytes } => {
                let reps = imb_reps(fidelity, bytes);
                vec![at(
                    Scenario::new(System::Dmz, 2, Workload::PingPong { bytes, reps })
                        .with_placement(Placement::Scheme(corescope_affinity::Scheme::Default))
                        .with_mpi(mpi)
                        .with_lock(LockLayer::USysV),
                    Reduction::PingPongBandwidth { bytes, reps },
                )]
            }
            Probe::PingPongBoostRatio => {
                let bytes = 1e6;
                let reps = imb_reps(fidelity, bytes);
                let pingpong = |scheme| {
                    at(
                        Scenario::new(System::Dmz, 2, Workload::PingPong { bytes, reps })
                            .with_placement(Placement::Scheme(scheme))
                            .with_mpi(MpiImpl::OpenMpi)
                            .with_lock(LockLayer::USysV),
                        Reduction::PingPongBandwidth { bytes, reps },
                    )
                };
                vec![
                    // Bound (same socket) then unbound (across sockets).
                    pingpong(corescope_affinity::Scheme::TwoMpiLocalAlloc),
                    pingpong(corescope_affinity::Scheme::OneMpiLocalAlloc),
                ]
            }
            Probe::MemoryLatencyNs { .. } => Vec::new(),
            Probe::XsLookupRate { system } => {
                vec![at(
                    Scenario::new(
                        system,
                        1,
                        Workload::XsLookupSingle {
                            grid_points: XS_PROBE_GRID,
                            nuclides: XS_PROBE_NUCLIDES,
                            lookups_per_rank: XS_PROBE_LOOKUPS,
                        },
                    )
                    .with_placement(Placement::Scheme(corescope_affinity::Scheme::TwoMpiLocalAlloc))
                    .with_mpi(MpiImpl::Lam),
                    Reduction::Makespan,
                )]
            }
            Probe::NasSchemeRatio { workload, nranks, num, den } => {
                let scenario = |placement| {
                    at(
                        Scenario::new(System::Longs, nranks, workload.workload())
                            .with_placement(placement)
                            .with_mpi(MpiImpl::Mpich2)
                            .with_lock(LockLayer::USysV),
                        Reduction::Makespan,
                    )
                };
                vec![scenario(num), scenario(den)]
            }
        }
    }

    /// Combines the reduced observables (in [`Probe::observables`]
    /// order) into the predicted scalar, in the target's units.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] when `reduced` has the wrong arity.
    pub fn predict(&self, params: &CalibParams, reduced: &[f64]) -> Result<f64> {
        let one = || -> Result<f64> {
            match reduced {
                [v] => Ok(*v),
                _ => Err(Error::InvalidSpec("probe expected exactly one observable".to_string())),
            }
        };
        let two = || -> Result<(f64, f64)> {
            match reduced {
                [a, b] => Ok((*a, *b)),
                _ => Err(Error::InvalidSpec("probe expected exactly two observables".to_string())),
            }
        };
        match *self {
            Probe::StreamBw { nranks, per_core, .. } => {
                let bw = one()?;
                Ok(if per_core { bw / nranks as f64 / 1e9 } else { bw / 1e9 })
            }
            Probe::SchemeStreamBw { nranks, .. } => Ok(one()? / nranks as f64 / 1e9),
            Probe::DgemmPerCore { nranks, .. } | Probe::DaxpyPerCore { nranks, .. } => {
                Ok(one()? / nranks as f64)
            }
            Probe::PingPongLatencyUs { .. } => Ok(one()? * 1e6),
            Probe::PingPongBwGbs { .. } => Ok(one()? / 1e9),
            Probe::PingPongBoostRatio => {
                let (near, far) = two()?;
                Ok(near / far)
            }
            Probe::MemoryLatencyNs { system, node } => {
                let machine = system.machine_with(params);
                let core = CoreId::new(0);
                Ok(match node {
                    Some(n) => machine.memory_latency(core, NumaNodeId::new(n)) * 1e9,
                    None => machine
                        .nodes()
                        .map(|n| machine.memory_latency(core, n) * 1e9)
                        .fold(0.0, f64::max),
                })
            }
            Probe::NasSchemeRatio { .. } => {
                let (num, den) = two()?;
                Ok(num / den)
            }
            Probe::XsLookupRate { .. } => Ok(XS_PROBE_LOOKUPS as f64 / one()? / 1e6),
        }
    }
}

/// One graded calibration target.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Stable dotted id, e.g. `stream.longs.16.percore`.
    pub id: &'static str,
    /// Family for grouping.
    pub family: Family,
    /// Equality-with-tolerance or inequality.
    pub kind: TargetKind,
    /// Weight in the total score.
    pub weight: f64,
    /// Paper number or model-derived anchor.
    pub provenance: Provenance,
    /// How the prediction is computed.
    pub probe: Probe,
    /// Units, for reports.
    pub units: &'static str,
}

impl Target {
    /// Signed relative error for `Equal`, hinge relative overshoot for
    /// the inequalities (zero when the bound holds).
    pub fn rel_err(&self, predicted: f64) -> f64 {
        match self.kind {
            TargetKind::Equal { value, .. } => (predicted - value) / value,
            TargetKind::AtMost { bound } => ((predicted - bound) / bound).max(0.0),
            TargetKind::AtLeast { bound } => ((bound - predicted) / bound).max(0.0),
        }
    }

    /// Weighted squared relative error — the quantity the optimizer
    /// minimizes. Strictly increasing in `|rel_err|`.
    pub fn score(&self, predicted: f64) -> f64 {
        let e = self.rel_err(predicted);
        self.weight * e * e
    }

    /// Whether the prediction lands inside the target's tolerance
    /// (always the bound test for inequalities).
    pub fn satisfied(&self, predicted: f64) -> bool {
        match self.kind {
            TargetKind::Equal { tol, .. } => self.rel_err(predicted).abs() <= tol,
            TargetKind::AtMost { .. } | TargetKind::AtLeast { .. } => {
                self.rel_err(predicted) == 0.0
            }
        }
    }

    /// The nominal value (target value or bound), for reports.
    pub fn nominal(&self) -> f64 {
        match self.kind {
            TargetKind::Equal { value, .. } => value,
            TargetKind::AtMost { bound } | TargetKind::AtLeast { bound } => bound,
        }
    }
}

fn equal(value: f64, tol: f64) -> TargetKind {
    TargetKind::Equal { value, tol }
}

/// The full registry: the ~30 scalars EXPERIMENTS.md grades the
/// reproduction on, in family order.
pub fn registry() -> Vec<Target> {
    use corescope_affinity::Scheme;
    let mut t = Vec::new();
    let mut push = |id, family, kind, weight, provenance, probe, units| {
        t.push(Target { id, family, kind, weight, provenance, probe, units });
    };

    // --- STREAM (Figures 2/3): GB/s, scatter-local activation order.
    let stream = |system, nranks, per_core| Probe::StreamBw { system, nranks, per_core };
    push(
        "stream.tiger.1.percore",
        Family::Stream,
        equal(3.66, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Tiger, 1, true),
        "GB/s",
    );
    push(
        "stream.dmz.1.percore",
        Family::Stream,
        equal(3.66, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Dmz, 1, true),
        "GB/s",
    );
    push(
        "stream.dmz.2.aggregate",
        Family::Stream,
        equal(7.31, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Dmz, 2, false),
        "GB/s",
    );
    push(
        "stream.dmz.4.aggregate",
        Family::Stream,
        equal(8.40, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Dmz, 4, false),
        "GB/s",
    );
    push(
        "stream.longs.1.percore",
        Family::Stream,
        equal(1.86, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Longs, 1, true),
        "GB/s",
    );
    push(
        "stream.longs.8.aggregate",
        Family::Stream,
        equal(14.0, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Longs, 8, false),
        "GB/s",
    );
    push(
        "stream.longs.16.aggregate",
        Family::Stream,
        equal(14.0, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Longs, 16, false),
        "GB/s",
    );
    push(
        "stream.longs.16.percore",
        Family::Stream,
        equal(0.88, 0.05),
        1.0,
        Provenance::Paper,
        stream(System::Longs, 16, true),
        "GB/s",
    );
    // Model anchor: DMZ 2 ranks, one per socket, memory packed on node 0
    // — rank 1 streams entirely over HyperTransport, so this per-core
    // number pins `ht_bandwidth`. Value recorded from the shipped
    // calibration (see EXPERIMENTS.md X7).
    push(
        "stream.dmz.membind2.percore",
        Family::Stream,
        equal(ANCHOR_DMZ_MEMBIND2, 0.05),
        2.0,
        Provenance::Model,
        Probe::SchemeStreamBw {
            system: System::Dmz,
            nranks: 2,
            placement: Placement::Scheme(Scheme::OneMpiMembind),
        },
        "GB/s",
    );

    // --- BLAS (Figures 4–7): GFlop/s on DMZ.
    push(
        "dgemm.acml.percore",
        Family::Blas,
        equal(3.87, 0.05),
        1.0,
        Provenance::Paper,
        Probe::DgemmPerCore { variant: BlasVariant::Acml, nranks: 1 },
        "GF/s",
    );
    push(
        "dgemm.vanilla.percore",
        Family::Blas,
        equal(0.572, 0.05),
        1.0,
        Provenance::Paper,
        Probe::DgemmPerCore { variant: BlasVariant::Vanilla, nranks: 1 },
        "GF/s",
    );
    push(
        "daxpy.acml.1core",
        Family::Blas,
        equal(0.305, 0.05),
        1.0,
        Provenance::Paper,
        Probe::DaxpyPerCore { variant: BlasVariant::Acml, nranks: 1 },
        "GF/s",
    );
    push(
        "daxpy.acml.4packed.percore",
        Family::Blas,
        equal(0.175, 0.05),
        1.0,
        Provenance::Paper,
        Probe::DaxpyPerCore { variant: BlasVariant::Acml, nranks: 4 },
        "GF/s",
    );

    // --- PingPong (Figures 13/14/16): µs and GB/s.
    let dmz_latency = |mpi| Probe::PingPongLatencyUs {
        system: System::Dmz,
        nranks: 2,
        mpi,
        lock: LockLayer::USysV,
        bytes: 4.0,
    };
    push(
        "pingpong.lam.4b.us",
        Family::PingPong,
        equal(1.00, 0.10),
        1.0,
        Provenance::Paper,
        dmz_latency(MpiImpl::Lam),
        "µs",
    );
    push(
        "pingpong.openmpi.4b.us",
        Family::PingPong,
        equal(1.70, 0.10),
        1.0,
        Provenance::Paper,
        dmz_latency(MpiImpl::OpenMpi),
        "µs",
    );
    push(
        "pingpong.mpich2.4b.us",
        Family::PingPong,
        equal(3.50, 0.10),
        1.0,
        Provenance::Paper,
        dmz_latency(MpiImpl::Mpich2),
        "µs",
    );
    push(
        "pingpong.longs.sysv.8b.us",
        Family::PingPong,
        equal(5.57, 0.10),
        1.0,
        Provenance::Paper,
        Probe::PingPongLatencyUs {
            system: System::Longs,
            nranks: 16,
            mpi: MpiImpl::Lam,
            lock: LockLayer::SysV,
            bytes: 8.0,
        },
        "µs",
    );
    push(
        "pingpong.longs.usysv.8b.us",
        Family::PingPong,
        equal(1.01, 0.10),
        1.0,
        Provenance::Paper,
        Probe::PingPongLatencyUs {
            system: System::Longs,
            nranks: 16,
            mpi: MpiImpl::Lam,
            lock: LockLayer::USysV,
            bytes: 8.0,
        },
        "µs",
    );
    push(
        "pingpong.mpich2.4mb.gbs",
        Family::PingPong,
        equal(1.41, 0.10),
        1.0,
        Provenance::Paper,
        Probe::PingPongBwGbs { mpi: MpiImpl::Mpich2, bytes: 4.0 * 1024.0 * 1024.0 },
        "GB/s",
    );
    push(
        "pingpong.lam.4mb.gbs",
        Family::PingPong,
        equal(0.97, 0.10),
        1.0,
        Provenance::Paper,
        Probe::PingPongBwGbs { mpi: MpiImpl::Lam, bytes: 4.0 * 1024.0 * 1024.0 },
        "GB/s",
    );
    push(
        "pingpong.boost.ratio",
        Family::PingPong,
        equal(1.148, 0.10),
        1.0,
        Provenance::Paper,
        Probe::PingPongBoostRatio,
        "ratio",
    );

    // --- Latency plateaus (Extra X2): analytic, ns.
    let lat = |system, node| Probe::MemoryLatencyNs { system, node };
    push(
        "latency.tiger.local",
        Family::Latency,
        equal(140.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Tiger, Some(0)),
        "ns",
    );
    push(
        "latency.tiger.remote",
        Family::Latency,
        equal(195.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Tiger, None),
        "ns",
    );
    push(
        "latency.longs.local",
        Family::Latency,
        equal(275.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Longs, Some(0)),
        "ns",
    );
    push(
        "latency.longs.1hop",
        Family::Latency,
        equal(330.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Longs, Some(1)),
        "ns",
    );
    push(
        "latency.longs.2hop",
        Family::Latency,
        equal(385.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Longs, Some(4)),
        "ns",
    );
    push(
        "latency.longs.corner",
        Family::Latency,
        equal(495.0, 0.05),
        1.0,
        Provenance::Paper,
        lat(System::Longs, None),
        "ns",
    );

    // --- NAS scheme ratios (Table 2, class B, Longs, 8 tasks).
    let one_la = Placement::Scheme(Scheme::OneMpiLocalAlloc);
    push(
        "nas.cg8.membind_over_la",
        Family::Nas,
        equal(1.76, 0.10),
        1.0,
        Provenance::Paper,
        Probe::NasSchemeRatio {
            workload: NasWorkload::CgB,
            nranks: 8,
            num: Placement::Scheme(Scheme::OneMpiMembind),
            den: one_la,
        },
        "ratio",
    );
    push(
        "nas.ft8.membind_over_la",
        Family::Nas,
        equal(1.52, 0.10),
        1.0,
        Provenance::Paper,
        Probe::NasSchemeRatio {
            workload: NasWorkload::FtB,
            nranks: 8,
            num: Placement::Scheme(Scheme::OneMpiMembind),
            den: one_la,
        },
        "ratio",
    );
    push(
        "nas.cg8.interleave_over_la",
        Family::Nas,
        equal(1.33, 0.10),
        1.0,
        Provenance::Paper,
        Probe::NasSchemeRatio {
            workload: NasWorkload::CgB,
            nranks: 8,
            num: Placement::Scheme(Scheme::Interleave),
            den: one_la,
        },
        "ratio",
    );

    // --- Lookup-rate anchors (Extra X10): single-core XSBench-style
    // rates recorded from the shipped calibration. Latency-bound, so the
    // DMZ/Longs pair identifies (lookup_mlp, lookup_latency).
    push(
        "lookup.dmz.1.rate",
        Family::Lookup,
        equal(ANCHOR_XS_DMZ_RATE, 0.05),
        2.0,
        Provenance::Model,
        Probe::XsLookupRate { system: System::Dmz },
        "Ml/s",
    );
    push(
        "lookup.longs.1.rate",
        Family::Lookup,
        equal(ANCHOR_XS_LONGS_RATE, 0.05),
        2.0,
        Provenance::Model,
        Probe::XsLookupRate { system: System::Longs },
        "Ml/s",
    );

    // --- Modern-generation anchors (Extra X11): the scalars that pin
    // the four corescope-topo axes. Values recorded from the shipped
    // calibration; the constants they pin were transcribed from the
    // literature tables named in [`anchor_sources`].
    push(
        "topo.epyc.local.ns",
        Family::Topo,
        equal(ANCHOR_EPYC_LOCAL_NS, 0.05),
        1.0,
        Provenance::Model,
        lat(System::Epyc, Some(0)),
        "ns",
    );
    push(
        "topo.epyc.corner.ns",
        Family::Topo,
        equal(ANCHOR_EPYC_CORNER_NS, 0.05),
        1.0,
        Provenance::Model,
        lat(System::Epyc, None),
        "ns",
    );
    push(
        "topo.hbm.tier.ns",
        Family::Topo,
        equal(ANCHOR_HBM_TIER_NS, 0.05),
        1.0,
        Provenance::Model,
        lat(System::Hbm, Some(1)),
        "ns",
    );
    push(
        "topo.epyc.32.aggregate",
        Family::Topo,
        equal(ANCHOR_EPYC_STREAM32, 0.05),
        2.0,
        Provenance::Model,
        stream(System::Epyc, 32, false),
        "GB/s",
    );
    push(
        "topo.hbm.interleave16.percore",
        Family::Topo,
        equal(ANCHOR_HBM_INTERLEAVE16, 0.05),
        2.0,
        Provenance::Model,
        Probe::SchemeStreamBw {
            system: System::Hbm,
            nranks: 16,
            placement: Placement::Scheme(Scheme::Interleave),
        },
        "GB/s",
    );

    // --- Headline inequalities.
    // "best achievable single core bandwidth on the 8 socket system is
    // less than half of the more than 4 GB/s expected".
    push(
        "headline.longs.under_half_expected",
        Family::Headline,
        TargetKind::AtMost { bound: 2.1 },
        2.0,
        Provenance::Paper,
        stream(System::Longs, 1, true),
        "GB/s",
    );
    // Flat 8→16 scaling: the second cores must not add bandwidth.
    push(
        "headline.longs.flat_16",
        Family::Headline,
        TargetKind::AtMost { bound: 14.7 },
        1.0,
        Provenance::Paper,
        stream(System::Longs, 16, false),
        "GB/s",
    );

    t
}

/// The DMZ membind remote-stream anchor (GB/s per core), recorded from
/// the shipped calibration; see the X7 registry table in EXPERIMENTS.md.
/// With both ranks bound to node 0's memory, rank 1 streams entirely
/// over the HyperTransport link, so the slowest-rank (per-core) figure
/// IS the `ht_bandwidth` cap — which is what makes this target identify
/// that axis during fitting.
pub const ANCHOR_DMZ_MEMBIND2: f64 = 2.0;

/// Single-core DMZ lookup rate (Mlookups/s), recorded from the shipped
/// calibration: local table, so the per-lookup DRAM latency is the
/// 140 ns local plateau plus the 60 ns `lookup_latency` surcharge.
pub const ANCHOR_XS_DMZ_RATE: f64 = 0.1516;
/// Single-core Longs lookup rate (Mlookups/s), recorded from the shipped
/// calibration: the 275 ns probe-limited local plateau plus the same
/// 60 ns surcharge — the pair of base latencies is what separates
/// `lookup_mlp` from `lookup_latency` during fitting.
pub const ANCHOR_XS_LONGS_RATE: f64 = 0.0905;

/// EPYC-like chiplet-local load-to-use latency (ns): the 90 ns DDR4
/// plateau plus the 20 ns directory-probe term (base 10 ns + 5 ns/hop
/// over the diameter-2 mesh).
pub const ANCHOR_EPYC_LOCAL_NS: f64 = 110.0;
/// EPYC-like corner-to-corner latency (ns): local plateau plus one
/// on-package hop (`onpkg_latency`, 30 ns) and one cross-package hop
/// (60 ns) — the anchor that identifies `onpkg_latency` during fitting.
pub const ANCHOR_EPYC_CORNER_NS: f64 = 200.0;
/// HBM-tier load-to-use latency (ns) on the tiered node: the 110 ns
/// first-word HBM plateau plus the 10 ns on-package fabric hop, no
/// probe term on the single-socket machine.
pub const ANCHOR_HBM_TIER_NS: f64 = 120.0;
/// Full-pack local STREAM aggregate on the EPYC-like machine (GB/s):
/// eight chiplet controllers at `tier_dram_bandwidth` each — the anchor
/// that pins that axis.
pub const ANCHOR_EPYC_STREAM32: f64 = 256.0;
/// Per-core interleaved STREAM on the tiered node (GB/s): 16 ranks
/// striped over the DRAM and HBM nodes, jointly limited by the two
/// controllers and the interleaved latency mix — the anchor that pins
/// `tier_hbm_bandwidth`.
pub const ANCHOR_HBM_INTERLEAVE16: f64 = 14.63;

/// Literature provenance for the modern-generation anchors: the table
/// each transcribed constant came from, keyed by target id. The golden
/// test `topo_anchors_name_their_source_tables` keeps every `topo.*`
/// anchor pinned to its source.
pub fn anchor_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "topo.epyc.local.ns",
            "Bergstrom, arXiv:1103.3225, Table 1 — local-node latency on the \
             four-socket Opteron 6172 (Magny-Cours MCM), the chiplet-local \
             plateau the 90 ns DDR plateau and 20 ns probe term reproduce",
        ),
        (
            "topo.epyc.corner.ns",
            "Bergstrom, arXiv:1103.3225, Table 1 — worst-pair remote latency \
             across the MCM fabric, the source of the 30 ns on-package and \
             60 ns cross-package hop terms",
        ),
        (
            "topo.hbm.tier.ns",
            "RZBENCH, arXiv:0712.3389, Table 2 — vector-memory first-access \
             latency versus commodity DDR (SX-8 vs Opteron), the precedent \
             for a higher-latency high-bandwidth tier (110 ns + 10 ns fabric)",
        ),
        (
            "topo.epyc.32.aggregate",
            "Bergstrom, arXiv:1103.3225, Table 2 — all-cores local STREAM \
             scaling on the four-socket Opteron, scaled to eight 32 GB/s \
             DDR4 controllers (tier_dram_bandwidth)",
        ),
        (
            "topo.hbm.interleave16.percore",
            "RZBENCH, arXiv:0712.3389, Table 3 — sustained triad bandwidth \
             on the high-bandwidth memory system, the source of the \
             600 GB/s tier_hbm_bandwidth ceiling the interleaved mix draws on",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        assert!(reg.len() >= 33, "a real registry, not a stub: {}", reg.len());
    }

    #[test]
    fn topo_anchors_name_their_source_tables() {
        // Satellite golden: every modern-generation anchor must say which
        // literature table its transcribed constants came from, and the
        // source must actually name the paper's arXiv id and a table.
        let reg = registry();
        let sources = anchor_sources();
        for t in reg.iter().filter(|t| t.family == Family::Topo) {
            let (_, src) = sources
                .iter()
                .find(|(id, _)| *id == t.id)
                .unwrap_or_else(|| panic!("{} has no literature source", t.id));
            assert!(
                src.contains("arXiv:1103.3225") || src.contains("arXiv:0712.3389"),
                "{}: source must cite Bergstrom or RZBENCH: {src}",
                t.id
            );
            assert!(src.contains("Table"), "{}: source must name a table: {src}", t.id);
            assert_eq!(t.provenance, Provenance::Model, "{}", t.id);
        }
        for (id, _) in &sources {
            assert!(reg.iter().any(|t| t.id == *id), "stale source entry {id}");
        }
    }

    #[test]
    fn topo_analytic_anchors_match_the_shipped_machines() {
        let params = CalibParams::paper_2006();
        for (id, want) in [
            ("topo.epyc.local.ns", ANCHOR_EPYC_LOCAL_NS),
            ("topo.epyc.corner.ns", ANCHOR_EPYC_CORNER_NS),
            ("topo.hbm.tier.ns", ANCHOR_HBM_TIER_NS),
        ] {
            let t = registry().into_iter().find(|t| t.id == id).unwrap();
            assert!(t.probe.observables(&params, Fidelity::Full).is_empty(), "{id}");
            let v = t.probe.predict(&params, &[]).unwrap();
            assert!((v - want).abs() <= 1e-9 * want, "{id}: predicted {v} vs {want}");
        }
    }

    #[test]
    fn topo_stream_anchors_match_the_shipped_point() {
        let reg = registry();
        let params = CalibParams::paper_2006();
        for id in ["topo.epyc.32.aggregate", "topo.hbm.interleave16.percore"] {
            let t = reg.iter().find(|t| t.id == id).unwrap();
            let obs = t.probe.observables(&params, Fidelity::Quick);
            let reduced: Vec<f64> =
                obs.iter().map(|o| o.reduce.apply(o.scenario.run().unwrap().makespan)).collect();
            let v = t.probe.predict(&params, &reduced).unwrap();
            assert!(t.satisfied(v), "{id}: predicted {v} vs anchor {}", t.nominal());
        }
    }

    #[test]
    fn every_family_is_populated() {
        let reg = registry();
        for family in Family::all() {
            assert!(reg.iter().any(|t| t.family == family), "{family}");
        }
    }

    #[test]
    fn scoring_is_zero_at_the_target_and_grows_with_error() {
        let t = &registry()[0];
        let v = t.nominal();
        assert_eq!(t.score(v), 0.0);
        assert!(t.score(1.1 * v) > t.score(1.05 * v));
        assert!(t.satisfied(v));
        assert!(!t.satisfied(2.0 * v));
    }

    #[test]
    fn inequalities_score_only_violations() {
        let reg = registry();
        let headline = reg.iter().find(|t| t.id == "headline.longs.under_half_expected").unwrap();
        assert_eq!(headline.score(1.86), 0.0);
        assert_eq!(headline.score(2.1), 0.0);
        assert!(headline.score(3.0) > 0.0);
        assert!(headline.satisfied(1.86));
        assert!(!headline.satisfied(3.0));
    }

    #[test]
    fn analytic_probes_cost_no_engine_runs() {
        let p = Probe::MemoryLatencyNs { system: System::Tiger, node: Some(0) };
        let params = CalibParams::paper_2006();
        assert!(p.observables(&params, Fidelity::Full).is_empty());
        let v = p.predict(&params, &[]).unwrap();
        assert!((v - 140.0).abs() < 1.0, "tiger local plateau: {v}");
    }

    #[test]
    fn probe_arity_is_enforced() {
        let p = Probe::PingPongBoostRatio;
        let params = CalibParams::paper_2006();
        assert_eq!(p.observables(&params, Fidelity::Quick).len(), 2);
        assert!(p.predict(&params, &[1.0]).is_err());
        assert!(p.predict(&params, &[1.2e9, 1.0e9]).is_ok());
    }

    #[test]
    fn lookup_anchors_match_the_shipped_point() {
        let reg = registry();
        let params = CalibParams::paper_2006();
        for id in ["lookup.dmz.1.rate", "lookup.longs.1.rate"] {
            let t = reg.iter().find(|t| t.id == id).unwrap();
            let obs = t.probe.observables(&params, Fidelity::Full);
            assert_eq!(obs.len(), 1, "{id}");
            let reduced: Vec<f64> =
                obs.iter().map(|o| o.reduce.apply(o.scenario.run().unwrap().makespan)).collect();
            let v = t.probe.predict(&params, &reduced).unwrap();
            assert!(t.satisfied(v), "{id}: predicted {v} vs anchor {}", t.nominal());
        }
    }

    #[test]
    fn dmz_looks_up_faster_than_longs() {
        // The probe pair is only identifying because the two systems'
        // base latencies differ; the anchors must preserve that order.
        let nominal =
            |id: &str| registry().into_iter().find(|t| t.id == id).map(|t| t.nominal()).unwrap();
        assert!(nominal("lookup.dmz.1.rate") > 1.3 * nominal("lookup.longs.1.rate"));
    }

    #[test]
    fn observables_carry_the_requested_point() {
        let mut params = CalibParams::paper_2006();
        params.dram_latency *= 1.25;
        let p = Probe::StreamBw { system: System::Dmz, nranks: 2, per_core: false };
        let obs = p.observables(&params, Fidelity::Quick);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].scenario.params, params);
        assert_eq!(obs[0].scenario.fidelity, Fidelity::Quick);
    }
}
