//! Sensitivity analysis: Morris-style one-at-a-time elementary effects
//! over the calibration box, plus the raw observable sweeps the harness
//! ablation tables are built on.
//!
//! The elementary-effect pass answers "which parameter moves which
//! target family" — it subsumes the four hand-rolled ablation sweeps
//! (probe capacity, misplacement, lock cost, same-socket boost) by
//! making "sweep one knob, watch one observable" a single generic
//! operation.

use crate::eval::Evaluator;
use crate::targets::{Family, Observable};
use crate::Result;
use corescope_machine::{CalibParams, ParamField};
use corescope_sched::Scheduler;

/// The elementary effect of one parameter on one target family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effect {
    /// Parameter name (a [`CalibParams::FIELDS`] entry).
    pub param: &'static str,
    /// Target family whose score moved.
    pub family: Family,
    /// |Δ family score| per unit step in normalized coordinates.
    pub magnitude: f64,
}

/// One-at-a-time elementary effects: every axis is stepped by
/// `step` × (hi − lo) from `base` (down when the step would leave the
/// box) and the per-family score deltas are recorded.
///
/// Cost: `axes.len() + 1` evaluator calls.
///
/// # Errors
///
/// Propagates engine errors.
pub fn elementary_effects(
    eval: &Evaluator<'_>,
    base: &CalibParams,
    axes: &[usize],
    step: f64,
) -> Result<Vec<Effect>> {
    assert!(step > 0.0 && step < 1.0, "step is a fraction of the box");
    let baseline = eval.evaluate(base)?;
    let mut effects = Vec::new();
    for &axis in axes {
        let f = &CalibParams::FIELDS[axis];
        let x = (f.read(base) - f.lo) / (f.hi - f.lo);
        let stepped = if x + step <= 1.0 { x + step } else { x - step };
        let mut p = *base;
        f.write(&mut p, f.lo + stepped * (f.hi - f.lo));
        let moved = eval.evaluate(&p)?;
        for family in Family::all() {
            let delta = moved.family_score(family) - baseline.family_score(family);
            effects.push(Effect { param: f.name, family, magnitude: (delta / step).abs() });
        }
    }
    Ok(effects)
}

/// Parameters ranked by their effect on one family, strongest first;
/// zero-effect parameters are dropped.
pub fn ranking(effects: &[Effect], family: Family) -> Vec<Effect> {
    let mut rows: Vec<Effect> =
        effects.iter().filter(|e| e.family == family && e.magnitude > 0.0).copied().collect();
    rows.sort_by(|a, b| b.magnitude.total_cmp(&a.magnitude));
    rows
}

/// Runs a set of observables as one scheduler batch and reduces each to
/// its scalar.
///
/// # Errors
///
/// Propagates engine errors.
pub fn observe(sched: &Scheduler, observables: &[Observable]) -> Result<Vec<f64>> {
    let scenarios: Vec<_> = observables.iter().map(|o| o.scenario.clone()).collect();
    let completed = sched.run_batch(&scenarios);
    observables.iter().zip(completed).map(|(o, c)| Ok(o.reduce.apply(c?.result.makespan))).collect()
}

/// Sweeps one calibration field over explicit values, measuring one
/// observable at each point — the shape of every harness ablation table.
/// Values outside the field's documented bounds are allowed only in the
/// sense that they are NOT clamped here; the scenario layer rejects
/// out-of-bounds points, so callers sweep within the box.
///
/// # Errors
///
/// Propagates engine errors.
pub fn sweep_field(
    sched: &Scheduler,
    base: &Observable,
    field: &ParamField,
    values: &[f64],
) -> Result<Vec<f64>> {
    let observables: Vec<Observable> = values
        .iter()
        .map(|&v| {
            let mut p = base.scenario.params;
            field.write(&mut p, v);
            base.at(p)
        })
        .collect();
    observe(sched, &observables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::Reduction;
    use corescope_sched::{Fidelity, Placement, Scenario, Scheduler, System, Workload};

    fn axis(name: &str) -> usize {
        CalibParams::FIELDS.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn latency_effects_single_out_the_latency_knobs() {
        let s = Scheduler::new(1);
        let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Latency]);
        let base = CalibParams::paper_2006();
        let axes = [axis("dram_latency"), axis("ht_bandwidth"), axis("lock_sysv")];
        let effects = elementary_effects(&eval, &base, &axes, 0.1).unwrap();
        let ranked = ranking(&effects, Family::Latency);
        assert_eq!(ranked[0].param, "dram_latency");
        // Bandwidth and lock knobs cannot move an analytic latency.
        assert!(ranked.iter().all(|e| e.param == "dram_latency"));
    }

    #[test]
    fn sweep_field_reproduces_a_capacity_ladder() {
        let s = Scheduler::new(2);
        let base = Observable {
            scenario: Scenario::new(
                System::Longs,
                16,
                Workload::StreamStar {
                    kernel: corescope_kernels::stream::StreamKernel::Triad,
                    elements_per_rank: 400_000,
                    sweeps: 2,
                },
            )
            .with_fidelity(Fidelity::Quick)
            .with_placement(Placement::Scheme(corescope_affinity::Scheme::TwoMpiLocalAlloc))
            .with_mpi(corescope_smpi::MpiImpl::Lam),
            reduce: Reduction::AggregateBandwidth { total_bytes: 1.0 },
        };
        let field = CalibParams::field("probe_capacity_ladder").unwrap();
        let out = sweep_field(&s, &base, field, &[7e9, 14e9, 28e9]).unwrap();
        assert_eq!(out.len(), 3);
        // Doubling the fabric doubles bandwidth while the cap binds.
        assert!(out[1] > 1.8 * out[0], "{out:?}");
        assert!(out[2] > 1.8 * out[1], "{out:?}");
    }

    #[test]
    fn observe_is_order_preserving() {
        let s = Scheduler::new(2);
        let mk = |sweeps| Observable {
            scenario: Scenario::new(
                System::Dmz,
                1,
                Workload::StreamStar {
                    kernel: corescope_kernels::stream::StreamKernel::Triad,
                    elements_per_rank: 400_000,
                    sweeps,
                },
            )
            .with_fidelity(Fidelity::Quick),
            reduce: Reduction::Makespan,
        };
        let out = observe(&s, &[mk(2), mk(4)]).unwrap();
        assert!(out[1] > out[0], "twice the sweeps, twice the time: {out:?}");
    }
}
