//! Property tests for target scoring.
//!
//! The optimizer only descends reliably if every target's score is
//! monotone in the size of its miss and zero exactly when the target is
//! hit (for inequalities). These properties are checked over the whole
//! shipped registry with generated error magnitudes, so adding a target
//! with a broken kind/weight combination fails here rather than as an
//! unexplained fit plateau. (Per-field digest distinctness — the cache
//! side of calibration — is property-tested in `corescope-sched`.)

use corescope_calib::targets::{registry, TargetKind};
use proptest::prelude::*;

proptest! {
    /// Walking a prediction away from the target never lowers its
    /// score: for |e1| <= |e2|, score at relative error e1 is at most
    /// the score at e2, on both sides of the target.
    #[test]
    fn scoring_is_monotone_in_the_miss(e1 in 0.0f64..2.0, e2 in 0.0f64..2.0, sign in -1.0f64..1.0) {
        let (small, large) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let s = if sign >= 0.0 { 1.0 } else { -1.0 };
        for t in registry() {
            let near = t.nominal() * (1.0 + s * small);
            let far = t.nominal() * (1.0 + s * large);
            prop_assert!(
                t.score(near) <= t.score(far) + 1e-12,
                "{}: score({near}) = {} > score({far}) = {}",
                t.id, t.score(near), t.score(far)
            );
        }
    }

    /// The hit side of every target scores zero and satisfies; the miss
    /// side past the tolerance scores positive and does not.
    #[test]
    fn score_is_zero_exactly_on_the_hit_side(e in 1e-6f64..2.0) {
        for t in registry() {
            match t.kind {
                TargetKind::Equal { value, tol } => {
                    prop_assert!(t.satisfied(value));
                    prop_assert_eq!(t.score(value), 0.0);
                    let outside = value * (1.0 + tol + e);
                    prop_assert!(!t.satisfied(outside), "{}: {} inside tol", t.id, outside);
                    prop_assert!(t.score(outside) > 0.0);
                }
                TargetKind::AtMost { bound } => {
                    let inside = bound * (1.0 - e).max(0.0);
                    prop_assert!(t.satisfied(inside));
                    prop_assert_eq!(t.score(inside), 0.0);
                    let outside = bound * (1.0 + e);
                    prop_assert!(!t.satisfied(outside));
                    prop_assert!(t.score(outside) > 0.0);
                }
                TargetKind::AtLeast { bound } => {
                    let inside = bound * (1.0 + e);
                    prop_assert!(t.satisfied(inside));
                    prop_assert_eq!(t.score(inside), 0.0);
                    let outside = bound * (1.0 - e);
                    if outside < bound {
                        prop_assert!(!t.satisfied(outside));
                        prop_assert!(t.score(outside) > 0.0);
                    }
                }
            }
        }
    }

    /// Score scales linearly with the target weight: it is exactly
    /// weight times the squared relative error.
    #[test]
    fn score_is_weighted_squared_relative_error(e in -0.9f64..2.0) {
        for t in registry() {
            let predicted = t.nominal() * (1.0 + e);
            let r = t.rel_err(predicted);
            prop_assert!((t.score(predicted) - t.weight * r * r).abs() < 1e-12, "{}", t.id);
        }
    }
}
