//! End-to-end fit check: the x7 artifact's core claim, at test scale.
//! From a perturbed start (+25% DRAM latency, -25% HT bandwidth), a
//! 60-evaluation fit over the stream and latency families must recover
//! the shipped constants within 5%.

use corescope_calib::eval::Evaluator;
use corescope_calib::search::{fit, FitConfig};
use corescope_calib::targets::Family;
use corescope_machine::CalibParams;
use corescope_sched::{Fidelity, Scheduler};

#[test]
fn two_axis_fit_recovers_shipped() {
    let s = Scheduler::new(4);
    let eval = Evaluator::with_families(&s, Fidelity::Quick, &[Family::Stream, Family::Latency]);
    let mut start = CalibParams::paper_2006();
    start.dram_latency *= 1.25;
    start.ht_bandwidth *= 0.75;
    let axes: Vec<usize> = ["dram_latency", "ht_bandwidth"]
        .iter()
        .map(|n| CalibParams::FIELDS.iter().position(|f| f.name == *n).unwrap())
        .collect();
    let config = FitConfig::new(axes).with_budget(60);
    let r = fit(&eval, start, &config).unwrap();
    assert!(r.converged, "best score {} after {} evals", r.best_score, r.evaluations);
    assert!(r.best_score < r.start_score);
    let rel_lat = (r.fitted.dram_latency - 70e-9).abs() / 70e-9;
    let rel_bw = (r.fitted.ht_bandwidth - 2e9).abs() / 2e9;
    assert!(rel_lat < 0.05, "dram_latency fitted {:.4e}", r.fitted.dram_latency);
    assert!(rel_bw < 0.05, "ht_bandwidth fitted {:.4e}", r.fitted.ht_bandwidth);
}
