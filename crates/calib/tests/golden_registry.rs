//! Golden test: the target registry and the X7 table in EXPERIMENTS.md
//! are the same document. Editing a target value in one place without
//! the other fails here, so the markdown record of what the model is
//! graded against can never drift from what the code actually grades.

use corescope_calib::targets::{registry, TargetKind};
use std::fs;
use std::path::Path;

struct Row {
    id: String,
    family: String,
    kind: String,
    value: f64,
    tol: Option<f64>,
    weight: f64,
    provenance: String,
    units: String,
}

/// Parses the X7 registry table: every markdown table row after the
/// "Target registry" heading whose first cell is a known id shape.
fn parse_table(doc: &str) -> Vec<Row> {
    let section = doc
        .split("### Target registry")
        .nth(1)
        .expect("EXPERIMENTS.md must contain the X7 target-registry section");
    let mut rows = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 8 || cells[0] == "id" || cells[0].starts_with('-') {
            continue;
        }
        rows.push(Row {
            id: cells[0].to_string(),
            family: cells[1].to_string(),
            kind: cells[2].to_string(),
            value: cells[3].parse().unwrap_or_else(|_| panic!("bad value in row {}", cells[0])),
            tol: if cells[4] == "-" { None } else { Some(cells[4].parse().unwrap()) },
            weight: cells[5].parse().unwrap(),
            provenance: cells[6].to_string(),
            units: cells[7].to_string(),
        });
    }
    rows
}

#[test]
fn registry_matches_experiments_table() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md");
    let doc = fs::read_to_string(path).expect("EXPERIMENTS.md is at the repo root");
    let rows = parse_table(&doc);
    let targets = registry();
    assert_eq!(rows.len(), targets.len(), "the X7 table and registry() must list the same targets");
    for (row, target) in rows.iter().zip(&targets) {
        assert_eq!(row.id, target.id, "table order must match registry order");
        assert_eq!(row.family, target.family.key(), "{}", target.id);
        assert_eq!(row.provenance, target.provenance.key(), "{}", target.id);
        assert_eq!(row.units, target.units, "{}", target.id);
        assert_eq!(row.weight, target.weight, "{}", target.id);
        match target.kind {
            TargetKind::Equal { value, tol } => {
                assert_eq!(row.kind, "equal", "{}", target.id);
                assert_eq!(
                    row.value, value,
                    "{}: table {} vs code {}",
                    target.id, row.value, value
                );
                assert_eq!(row.tol, Some(tol), "{}", target.id);
            }
            TargetKind::AtMost { bound } => {
                assert_eq!(row.kind, "at-most", "{}", target.id);
                assert_eq!(row.value, bound, "{}", target.id);
                assert_eq!(row.tol, None, "{}", target.id);
            }
            TargetKind::AtLeast { bound } => {
                assert_eq!(row.kind, "at-least", "{}", target.id);
                assert_eq!(row.value, bound, "{}", target.id);
                assert_eq!(row.tol, None, "{}", target.id);
            }
        }
    }
}
